//! The sharded deterministic datapath (DESIGN.md §14).
//!
//! Scaling the packet rate cannot come from running the event loop on
//! more cores — the loop's outputs are a serial total order that every
//! golden and corpus differential depends on. What *can* leave the serial
//! loop is everything upstream of it: workload generation, the k-way
//! time-ordered merge, and per-packet feature extraction. This module
//! moves exactly that work into shards:
//!
//! * Sources (or flows, for a pre-merged stream) are partitioned across
//!   `N` shards by FNV-1a hash.
//! * Each shard independently materializes one **time window** (one
//!   control period) of its packets into a struct-of-arrays
//!   [`PacketArena`] — pulling its sources, ordering its slice of the
//!   window, and precomputing the switch's classification features into
//!   the arena's feature column.
//! * At the window boundary the shard batches are merged with a
//!   deterministic `(arrival, source-index)` tie-break — byte-identical
//!   to [`MergedSource`]'s packet-at-a-time heap for every shard count,
//!   including `N = 1`.
//!
//! The serial consumer ([`run_sharded`]) is the same three-slot calendar
//! loop as [`engine::run`], but arrivals come from the pre-built window
//! batches and enter the switch through
//! [`Switch::ingress_featured`] with their precomputed feature row.
//! Shards share nothing and windows are sealed before consumption, so a
//! thread pool can map shards to workers without changing a single output
//! byte; on a single-core host the shards simply run inline, which is
//! also why the per-packet channel design of the first sharding prototype
//! (see DESIGN.md §14) lost to serial and this one does not.
//!
//! [`MergedSource`]: crate::source::MergedSource
//! [`engine::run`]: crate::engine::run

use crate::arena::PacketArena;
use crate::engine::{EngineConfig, EventCalendar, EventSlot, RunResult};
use crate::latency::DelayHistogram;
use crate::packet::{Dropped, Packet};
use crate::source::PacketSource;
use crate::stats::StatsCollector;
use crate::switch::{FeatureExtractor, Switch};
use crate::time::{SimDuration, SimTime};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice — the shard-partitioning hash.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The shard a source index maps to.
pub fn source_shard(idx: usize, shards: usize) -> usize {
    (fnv1a64(&(idx as u64).to_le_bytes()) % shards as u64) as usize
}

/// The shard a packet's flow five-tuple maps to.
pub fn flow_shard(p: &Packet, shards: usize) -> usize {
    let s = p.src.octets();
    let d = p.dst.octets();
    let sp = p.sport.to_be_bytes();
    let dp = p.dport.to_be_bytes();
    let bytes = [
        s[0], s[1], s[2], s[3], d[0], d[1], d[2], d[3], sp[0], sp[1], dp[0], dp[1], p.proto,
    ];
    (fnv1a64(&bytes) % shards as u64) as usize
}

/// One upstream source owned by a shard, with its buffered head packet.
struct Feed {
    /// Global source index — the merge tie-break, identical to the index
    /// [`MergedSource`](crate::source::MergedSource) would use.
    idx: u32,
    src: Box<dyn PacketSource>,
    head: Option<Packet>,
}

/// One shard's window state: its sources, its slice of the current
/// window (arena rows in pull order, a sorted emission permutation over
/// them), and a cursor.
struct ShardBuf {
    members: Vec<Feed>,
    arena: PacketArena,
    /// Merge key per emission position, ascending:
    /// `(arrival_ns << 32) | src_idx` for source mode, the global pull
    /// ordinal for stream mode.
    keys: Vec<u128>,
    /// Arena row per emission position — packets land in the arena in
    /// pull order and are never moved; this permutation is the sorted
    /// window order.
    rows: Vec<u32>,
    cursor: usize,
    /// Window sort scratch: `(arrival_ns, src_idx, arena_row)` — the row
    /// is globally increasing in pull order, so the unstable sort is a
    /// total, deterministic order.
    order: Vec<(u64, u32, u32)>,
}

impl ShardBuf {
    fn new(feature_width: usize) -> Self {
        ShardBuf {
            members: Vec::new(),
            arena: PacketArena::new(feature_width),
            keys: Vec::new(),
            rows: Vec::new(),
            cursor: 0,
            order: Vec::new(),
        }
    }

    fn reset_window(&mut self) {
        self.arena.clear();
        self.keys.clear();
        self.rows.clear();
        self.cursor = 0;
        self.order.clear();
    }

    /// Materializes this shard's slice of the window `[.., end_ns)`:
    /// pulls every member source up to the boundary, orders the slice by
    /// `(arrival, source-index)` — stable within a source via the pull
    /// position — and fills the arena columns (features included).
    fn fill_from_members(&mut self, end_ns: u64, extractor: Option<&FeatureExtractor>) {
        self.reset_window();
        for feed in &mut self.members {
            loop {
                let within = feed
                    .head
                    .as_ref()
                    .is_some_and(|p| p.arrival.as_nanos() < end_ns);
                if !within {
                    break;
                }
                let pkt = feed.head.take().expect("checked above");
                let next = feed.src.next_packet();
                if let Some(n) = &next {
                    debug_assert!(
                        n.arrival >= pkt.arrival,
                        "source {} emitted a packet out of order ({} < {})",
                        feed.idx,
                        n.arrival,
                        pkt.arrival,
                    );
                }
                feed.head = next;
                let row = self.arena.len() as u32;
                self.order.push((pkt.arrival.as_nanos(), feed.idx, row));
                self.arena.push(pkt, extractor);
            }
        }
        // The arena-row tie-break makes the key total, so the unstable
        // sort is deterministic and equals a stable `(arrival, idx)`
        // sort in per-source pull order.
        self.order.sort_unstable();
        for &(t_ns, idx, row) in &self.order {
            self.keys.push((u128::from(t_ns) << 32) | u128::from(idx));
            self.rows.push(row);
        }
    }

    fn head_key(&self) -> Option<u128> {
        self.keys.get(self.cursor).copied()
    }
}

/// A packet emitted by a [`ShardedFeed`], with the arena coordinates of
/// its precomputed feature row.
struct FedPacket {
    pkt: Packet,
    shard: u32,
    row: u32,
}

/// The windowed shard generator + deterministic merge.
struct ShardedFeed {
    shards: Vec<ShardBuf>,
    window_ns: u64,
    extractor: Option<FeatureExtractor>,
    /// Source mode assigns merge-order sequence numbers exactly like
    /// `MergedSource`; stream mode preserves the inner stream's.
    assign_seq: bool,
    next_seq: u64,
    /// Stream mode: the pre-merged input and its buffered head.
    stream: Option<Box<dyn PacketSource>>,
    stream_head: Option<Packet>,
    stream_ordinal: u64,
}

impl ShardedFeed {
    /// Partitions `sources` across `shards` by FNV-1a of the global
    /// source index.
    fn from_sources(
        sources: Vec<Box<dyn PacketSource>>,
        shards: usize,
        window: SimDuration,
        extractor: Option<FeatureExtractor>,
    ) -> Self {
        assert!(shards >= 1, "need at least one shard");
        let width = extractor.as_ref().map_or(0, |e| e.width());
        let mut bufs: Vec<ShardBuf> = (0..shards).map(|_| ShardBuf::new(width)).collect();
        for (idx, mut src) in sources.into_iter().enumerate() {
            let head = src.next_packet();
            bufs[source_shard(idx, shards)].members.push(Feed {
                idx: idx as u32,
                src,
                head,
            });
        }
        ShardedFeed {
            shards: bufs,
            window_ns: window.as_nanos().max(1),
            extractor,
            assign_seq: true,
            next_seq: 0,
            stream: None,
            stream_head: None,
            stream_ordinal: 0,
        }
    }

    /// Partitions an already-merged stream across `shards` by FNV-1a of
    /// each packet's flow five-tuple. The merge restores the stream's own
    /// order (by pull ordinal), so the output is the input stream —
    /// with every packet's feature row precomputed in its shard's arena.
    fn from_stream(
        mut source: Box<dyn PacketSource>,
        shards: usize,
        window: SimDuration,
        extractor: Option<FeatureExtractor>,
    ) -> Self {
        assert!(shards >= 1, "need at least one shard");
        let width = extractor.as_ref().map_or(0, |e| e.width());
        let bufs: Vec<ShardBuf> = (0..shards).map(|_| ShardBuf::new(width)).collect();
        let head = source.next_packet();
        ShardedFeed {
            shards: bufs,
            window_ns: window.as_nanos().max(1),
            extractor,
            assign_seq: false,
            next_seq: 0,
            stream: Some(source),
            stream_head: head,
            stream_ordinal: 0,
        }
    }

    /// Seals the next non-empty window into the shard arenas. Returns
    /// `false` when every source is exhausted. The window grid is
    /// anchored at `t = 0` with empty windows skipped, so the boundaries
    /// are a pure function of the traffic — not of the shard count.
    fn fill_window(&mut self) -> bool {
        let min_ns = match &self.stream {
            Some(_) => self.stream_head.as_ref().map(|p| p.arrival.as_nanos()),
            None => self
                .shards
                .iter()
                .flat_map(|s| s.members.iter())
                .filter_map(|f| f.head.as_ref().map(|p| p.arrival.as_nanos()))
                .min(),
        };
        let Some(min_ns) = min_ns else {
            return false;
        };
        let end_ns = (min_ns / self.window_ns)
            .saturating_add(1)
            .saturating_mul(self.window_ns);
        if let Some(src) = &mut self.stream {
            let n = self.shards.len();
            for s in &mut self.shards {
                s.reset_window();
            }
            loop {
                let within = self
                    .stream_head
                    .as_ref()
                    .is_some_and(|p| p.arrival.as_nanos() < end_ns);
                if !within {
                    break;
                }
                let pkt = self.stream_head.take().expect("checked above");
                self.stream_head = src.next_packet();
                let buf = &mut self.shards[flow_shard(&pkt, n)];
                buf.keys.push(u128::from(self.stream_ordinal));
                buf.rows.push(buf.arena.len() as u32);
                self.stream_ordinal += 1;
                buf.arena.push(pkt, self.extractor.as_ref());
            }
        } else {
            let extractor = self.extractor.clone();
            for s in &mut self.shards {
                s.fill_from_members(end_ns, extractor.as_ref());
            }
        }
        true
    }

    /// The next packet in the deterministic merge order: the lowest merge
    /// key across the shard batch heads (keys are unique — a source, and
    /// an ordinal, lives in exactly one shard).
    fn next(&mut self) -> Option<FedPacket> {
        loop {
            let mut best: Option<(u128, usize)> = None;
            for (s, buf) in self.shards.iter().enumerate() {
                if let Some(k) = buf.head_key() {
                    if best.is_none_or(|(bk, _)| k < bk) {
                        best = Some((k, s));
                    }
                }
            }
            match best {
                Some((_, s)) => {
                    let buf = &mut self.shards[s];
                    let row = buf.rows[buf.cursor];
                    buf.cursor += 1;
                    let mut pkt = buf.arena.packet(row as usize).clone();
                    if self.assign_seq {
                        pkt.seq = self.next_seq;
                        self.next_seq += 1;
                    }
                    return Some(FedPacket {
                        pkt,
                        shard: s as u32,
                        row,
                    });
                }
                None => {
                    if !self.fill_window() {
                        return None;
                    }
                }
            }
        }
    }

    fn features_row(&self, shard: u32, row: u32) -> &[u32] {
        self.shards[shard as usize].arena.features_row(row as usize)
    }
}

/// [`MergedSource`](crate::source::MergedSource) rebuilt on the windowed
/// shard machinery: merges `sources` into one time-ordered, sequence-
/// numbered stream, byte-identical to `MergedSource` for every shard
/// count. Implements [`PacketSource`], so it composes with the fault
/// plane, streaming telemetry, and every engine entry point.
pub struct ShardedSource {
    feed: ShardedFeed,
}

impl ShardedSource {
    /// Builds the sharded merge over `sources` with the given window.
    pub fn new(sources: Vec<Box<dyn PacketSource>>, shards: usize, window: SimDuration) -> Self {
        ShardedSource {
            feed: ShardedFeed::from_sources(sources, shards, window, None),
        }
    }
}

impl PacketSource for ShardedSource {
    fn next_packet(&mut self) -> Option<Packet> {
        self.feed.next().map(|f| f.pkt)
    }
}

/// The sharded datapath's serial consumer: the same event loop as
/// [`run`](crate::engine::run), fed by windowed shard batches.
#[derive(Debug, Clone)]
pub struct ShardedEngine {
    shards: usize,
}

impl ShardedEngine {
    /// An engine with `shards` generation shards (`1` is valid and is the
    /// plain batched datapath).
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        ShardedEngine { shards }
    }

    /// The generation window: one control period, falling back to the
    /// stats interval when the scenario runs no control plane.
    fn window(cfg: &EngineConfig) -> SimDuration {
        cfg.control_period.unwrap_or(cfg.stats_interval)
    }

    /// Runs `sources` (merged shard-side, `MergedSource`-identically)
    /// through `switch`. Result-identical to
    /// `run(&mut MergedSource::new(sources), switch, cfg)`.
    pub fn run(
        &self,
        sources: Vec<Box<dyn PacketSource>>,
        switch: &mut dyn Switch,
        cfg: &EngineConfig,
    ) -> RunResult {
        let feed = ShardedFeed::from_sources(
            sources,
            self.shards,
            Self::window(cfg),
            switch.feature_extractor(),
        );
        run_feed(feed, switch, cfg)
    }

    /// Runs a pre-merged `source` through `switch`, partitioning by flow
    /// hash. Result-identical to `run(&mut source, switch, cfg)`.
    pub fn run_stream(
        &self,
        source: Box<dyn PacketSource>,
        switch: &mut dyn Switch,
        cfg: &EngineConfig,
    ) -> RunResult {
        let feed = ShardedFeed::from_stream(
            source,
            self.shards,
            Self::window(cfg),
            switch.feature_extractor(),
        );
        run_feed(feed, switch, cfg)
    }
}

/// [`ShardedEngine::run`] as a free function, mirroring
/// [`run`](crate::engine::run)'s shape.
pub fn run_sharded(
    sources: Vec<Box<dyn PacketSource>>,
    switch: &mut dyn Switch,
    cfg: &EngineConfig,
    shards: usize,
) -> RunResult {
    ShardedEngine::new(shards).run(sources, switch, cfg)
}

/// The truncating pull mirroring the serial engine's `next_arrival`: the
/// first packet at or past the end time is consumed and discarded, and
/// the feed is never pulled again.
fn next_fed(feed: &mut ShardedFeed, end: Option<SimTime>, done: &mut bool) -> Option<FedPacket> {
    if *done {
        return None;
    }
    let fed = feed.next()?;
    match end {
        Some(end) if fed.pkt.arrival >= end => {
            *done = true;
            None
        }
        _ => Some(fed),
    }
}

/// The serial consumer loop — [`run`](crate::engine::run) with arrivals
/// taken from sealed window batches and delivered through
/// [`Switch::ingress_featured`] with their precomputed feature rows.
/// Stays event-for-event identical: same three-slot calendar, same
/// tie-breaks, same work-gated control plane, same end-time truncation.
fn run_feed(mut feed: ShardedFeed, switch: &mut dyn Switch, cfg: &EngineConfig) -> RunResult {
    let mut stats = StatsCollector::new(cfg.stats_interval);
    let mut delays = DelayHistogram::new();
    let mut drops_buf: Vec<Dropped> = Vec::new();

    let mut calendar = EventCalendar::new();
    let mut src_done = false;
    let mut pending: Option<FedPacket> = next_fed(&mut feed, cfg.end_time, &mut src_done);
    if let Some(p) = &pending {
        calendar.schedule(EventSlot::Arrival, p.pkt.arrival);
    }
    let mut in_flight: Option<Packet> = None;
    if let Some(period) = cfg.control_period {
        calendar.schedule(EventSlot::Control, SimTime::ZERO + period);
    }

    let mut now = SimTime::ZERO;
    let (mut arrivals, mut departures, mut total_drops) = (0u64, 0u64, 0u64);
    let mut stats_bucket = 0u64;

    loop {
        let has_work = calendar.is_scheduled(EventSlot::Tx)
            || calendar.is_scheduled(EventSlot::Arrival)
            || switch.backlog_pkts() > 0;
        let next = if has_work {
            calendar.earliest()
        } else {
            calendar.earliest_without_control()
        };
        let Some((slot, t)) = next else {
            break;
        };
        debug_assert!(t >= now, "event time went backwards");
        now = t;

        let bucket = now.bucket(cfg.stats_interval);
        if bucket != stats_bucket {
            stats_bucket = bucket;
        }

        match slot {
            EventSlot::Tx => {
                let pkt = in_flight.take().expect("Tx slot implies in-flight");
                calendar.cancel(EventSlot::Tx);
                stats.on_depart(&pkt, now);
                delays.record(pkt.class, now.saturating_since(pkt.arrival));
                departures += 1;
            }
            EventSlot::Control => {
                let period = cfg.control_period.expect("Control slot implies a period");
                switch.control_tick(now);
                calendar.schedule(EventSlot::Control, now + period);
            }
            EventSlot::Arrival => {
                let fed = pending
                    .take()
                    .expect("Arrival slot implies a pending packet");
                calendar.cancel(EventSlot::Arrival);
                stats.on_arrival(&fed.pkt);
                arrivals += 1;
                drops_buf.clear();
                let row = feed.features_row(fed.shard, fed.row);
                switch.ingress_featured(fed.pkt, row, now, &mut drops_buf);
                for d in &drops_buf {
                    stats.on_drop(d, now);
                }
                total_drops += drops_buf.len() as u64;
                pending = next_fed(&mut feed, cfg.end_time, &mut src_done);
                // Batched link tick: while the link is busy and the next
                // arrival strictly precedes every scheduled event (ties
                // go to Tx and Control, matching the calendar's slot
                // priority), arrivals ingress back-to-back without the
                // per-packet schedule/earliest/cancel round-trip. The
                // operation sequence — and therefore every output byte —
                // is exactly what the calendar would have produced.
                while in_flight.is_some() {
                    let Some(p) = &pending else { break };
                    let t = p.pkt.arrival;
                    let tx = calendar
                        .scheduled_at(EventSlot::Tx)
                        .expect("busy link implies a scheduled Tx");
                    if t >= tx {
                        break;
                    }
                    if calendar
                        .scheduled_at(EventSlot::Control)
                        .is_some_and(|c| t >= c)
                    {
                        break;
                    }
                    let fed = pending.take().expect("checked above");
                    debug_assert!(t >= now, "arrival time went backwards");
                    now = t;
                    stats.on_arrival(&fed.pkt);
                    arrivals += 1;
                    drops_buf.clear();
                    let row = feed.features_row(fed.shard, fed.row);
                    switch.ingress_featured(fed.pkt, row, now, &mut drops_buf);
                    for d in &drops_buf {
                        stats.on_drop(d, now);
                    }
                    total_drops += drops_buf.len() as u64;
                    pending = next_fed(&mut feed, cfg.end_time, &mut src_done);
                }
                if let Some(p) = &pending {
                    calendar.schedule(EventSlot::Arrival, p.pkt.arrival);
                }
            }
        }

        if in_flight.is_none() {
            if let Some(pkt) = switch.dequeue(now) {
                let tx = cfg.link.tx_time(pkt.size);
                calendar.schedule(EventSlot::Tx, now + tx);
                in_flight = Some(pkt);
            }
        }
    }

    RunResult {
        stats,
        delays,
        final_time: now,
        arrivals,
        departures,
        drops: total_drops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run;
    use crate::queue::FifoQueue;
    use crate::source::{MergedSource, VecSource};
    use crate::switch::SingleQueueSwitch;
    use crate::units::Bandwidth;
    use std::net::Ipv4Addr;

    /// A few CBR-ish sources with deliberate timestamp ties across
    /// sources and within one source.
    fn sources(k: usize) -> Vec<Box<dyn PacketSource>> {
        (0..k)
            .map(|s| {
                let pkts: Vec<Packet> = (0..40u64)
                    .map(|i| {
                        // Collide timestamps across sources (same grid) and
                        // duplicate every 8th timestamp within the source
                        // (each 8th packet reuses its predecessor's slot).
                        let grid = i - u64::from(i.is_multiple_of(8) && i > 0);
                        let t = SimTime::from_micros(grid * 100);
                        Packet::new(t)
                            .with_size(200 + (s as u32 % 5) * 100)
                            .with_src(Ipv4Addr::new(10, 0, (s / 256) as u8, (s % 256) as u8))
                            .with_dst(Ipv4Addr::new(20, 0, 0, 1))
                            .with_ports(1024 + s as u16, 443)
                            .with_proto(17)
                    })
                    .collect();
                Box::new(VecSource::new(pkts)) as Box<dyn PacketSource>
            })
            .collect()
    }

    fn drain(src: &mut dyn PacketSource) -> Vec<Packet> {
        std::iter::from_fn(|| src.next_packet()).collect()
    }

    #[test]
    fn sharded_source_is_byte_identical_to_merged_source() {
        for shards in [1, 2, 3, 8] {
            let mut serial = MergedSource::new(sources(7));
            let mut sharded = ShardedSource::new(sources(7), shards, SimDuration::from_millis(1));
            assert_eq!(
                drain(&mut serial),
                drain(&mut sharded),
                "shards={shards} must reproduce the serial merge exactly"
            );
        }
    }

    #[test]
    fn window_boundaries_do_not_reorder() {
        // A window much smaller than the inter-packet gap forces many
        // empty windows and boundary-straddling batches.
        let mut serial = MergedSource::new(sources(3));
        let mut sharded = ShardedSource::new(sources(3), 2, SimDuration::from_nanos(77));
        assert_eq!(drain(&mut serial), drain(&mut sharded));
    }

    #[test]
    fn empty_sharded_source_is_empty() {
        let mut s = ShardedSource::new(Vec::new(), 4, SimDuration::from_millis(1));
        assert!(s.next_packet().is_none());
    }

    fn cfg() -> EngineConfig {
        EngineConfig::new(Bandwidth::from_mbps(10))
            .with_control_period(SimDuration::from_millis(1))
            .with_end_time(SimTime::from_millis(3))
    }

    fn result_fingerprint(r: &RunResult) -> (u64, u64, u64, SimTime) {
        (r.arrivals, r.departures, r.drops, r.final_time)
    }

    #[test]
    fn run_sharded_matches_serial_run() {
        let mut serial_src = MergedSource::new(sources(7));
        let mut serial_sw = SingleQueueSwitch::new(FifoQueue::new(8_000));
        let serial = run(&mut serial_src, &mut serial_sw, &cfg());
        for shards in [1, 2, 8] {
            let mut sw = SingleQueueSwitch::new(FifoQueue::new(8_000));
            let res = run_sharded(sources(7), &mut sw, &cfg(), shards);
            assert_eq!(
                result_fingerprint(&serial),
                result_fingerprint(&res),
                "shards={shards}"
            );
        }
    }

    #[test]
    fn run_stream_matches_serial_run() {
        let mut serial_src = MergedSource::new(sources(5));
        let mut serial_sw = SingleQueueSwitch::new(FifoQueue::new(8_000));
        let serial = run(&mut serial_src, &mut serial_sw, &cfg());
        for shards in [1, 2, 8] {
            let mut sw = SingleQueueSwitch::new(FifoQueue::new(8_000));
            let src = Box::new(MergedSource::new(sources(5)));
            let res = ShardedEngine::new(shards).run_stream(src, &mut sw, &cfg());
            assert_eq!(
                result_fingerprint(&serial),
                result_fingerprint(&res),
                "shards={shards}"
            );
        }
    }

    /// A switch that records the exact ingress stream (seq, arrival, and
    /// the feature row it was handed) — the strongest identity probe.
    struct Recording {
        inner: SingleQueueSwitch<FifoQueue>,
        seen: Vec<(u64, SimTime, Vec<u32>)>,
    }

    impl Switch for Recording {
        fn ingress(&mut self, pkt: Packet, now: SimTime, drops: &mut Vec<Dropped>) {
            self.seen.push((pkt.seq, pkt.arrival, vec![pkt.size]));
            self.inner.ingress(pkt, now, drops);
        }
        fn ingress_featured(
            &mut self,
            pkt: Packet,
            features: &[u32],
            now: SimTime,
            drops: &mut Vec<Dropped>,
        ) {
            assert_eq!(features, [pkt.size], "precomputed row must match");
            self.ingress(pkt, now, drops);
        }
        fn feature_extractor(&self) -> Option<FeatureExtractor> {
            Some(FeatureExtractor::new(
                1,
                std::sync::Arc::new(|p: &Packet, out: &mut Vec<u32>| {
                    out.clear();
                    out.push(p.size);
                }),
            ))
        }
        fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
            self.inner.dequeue(now)
        }
        fn backlog_pkts(&self) -> usize {
            self.inner.backlog_pkts()
        }
    }

    #[test]
    fn featured_ingress_stream_is_identical_to_serial() {
        let mut serial_sw = Recording {
            inner: SingleQueueSwitch::new(FifoQueue::new(8_000)),
            seen: Vec::new(),
        };
        let mut serial_src = MergedSource::new(sources(6));
        run(&mut serial_src, &mut serial_sw, &cfg());
        for shards in [1, 2, 8] {
            let mut sw = Recording {
                inner: SingleQueueSwitch::new(FifoQueue::new(8_000)),
                seen: Vec::new(),
            };
            run_sharded(sources(6), &mut sw, &cfg(), shards);
            assert_eq!(serial_sw.seen, sw.seen, "shards={shards}");
        }
    }

    #[test]
    fn fnv_partition_is_stable() {
        // The partition function is part of the determinism contract:
        // pin a few values so an accidental hash change cannot hide.
        assert_eq!(fnv1a64(b""), FNV_OFFSET);
        let a = source_shard(0, 8);
        let b = source_shard(1, 8);
        for _ in 0..3 {
            assert_eq!(source_shard(0, 8), a);
            assert_eq!(source_shard(1, 8), b);
        }
        let p = Packet::new(SimTime::ZERO)
            .with_src(Ipv4Addr::new(10, 0, 0, 1))
            .with_dst(Ipv4Addr::new(20, 0, 0, 2))
            .with_ports(1234, 443)
            .with_proto(6);
        assert_eq!(flow_shard(&p, 8), flow_shard(&p.clone(), 8));
    }
}
