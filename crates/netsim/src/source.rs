//! Packet sources and the k-way time-ordered merge.
//!
//! Workload generators (the `accturbo-traffic` crate) implement
//! [`PacketSource`]; the engine consumes a single source, so experiments
//! compose background and attack generators with [`MergedSource`].

use crate::packet::Packet;
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A stream of packets in nondecreasing arrival-time order.
pub trait PacketSource {
    /// The next packet, or `None` when the source is exhausted.
    ///
    /// Implementations must yield nondecreasing `arrival` times;
    /// [`MergedSource`] enforces this with a debug assertion.
    fn next_packet(&mut self) -> Option<Packet>;
}

impl<S: PacketSource + ?Sized> PacketSource for Box<S> {
    fn next_packet(&mut self) -> Option<Packet> {
        (**self).next_packet()
    }
}

/// A source backed by a pre-built, time-sorted vector of packets.
#[derive(Debug, Clone)]
pub struct VecSource {
    packets: std::vec::IntoIter<Packet>,
}

impl VecSource {
    /// Wraps `packets`, sorting them by arrival time (stable, so packets
    /// with equal timestamps keep their relative order).
    pub fn new(mut packets: Vec<Packet>) -> Self {
        packets.sort_by_key(|p| p.arrival);
        VecSource {
            packets: packets.into_iter(),
        }
    }
}

impl PacketSource for VecSource {
    fn next_packet(&mut self) -> Option<Packet> {
        self.packets.next()
    }
}

/// An adapter making any correctly-ordered packet iterator a source.
pub struct IterSource<I: Iterator<Item = Packet>> {
    iter: I,
}

impl<I: Iterator<Item = Packet>> IterSource<I> {
    /// Wraps `iter`, which must yield nondecreasing arrival times.
    pub fn new(iter: I) -> Self {
        IterSource { iter }
    }
}

impl<I: Iterator<Item = Packet>> PacketSource for IterSource<I> {
    fn next_packet(&mut self) -> Option<Packet> {
        self.iter.next()
    }
}

/// Heap entry: (arrival, source index, buffered packet).
struct Head {
    arrival: SimTime,
    idx: usize,
    pkt: Packet,
}

impl PartialEq for Head {
    fn eq(&self, other: &Self) -> bool {
        self.arrival == other.arrival && self.idx == other.idx
    }
}
impl Eq for Head {}
impl PartialOrd for Head {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Head {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Tie-break on source index so merging is deterministic.
        (self.arrival, self.idx).cmp(&(other.arrival, other.idx))
    }
}

/// Merges several sources into one time-ordered stream and assigns each
/// emitted packet a unique, monotonically increasing sequence number.
pub struct MergedSource {
    sources: Vec<Box<dyn PacketSource>>,
    heads: BinaryHeap<Reverse<Head>>,
    next_seq: u64,
    last_emitted: SimTime,
}

impl MergedSource {
    /// Builds a merge over `sources`.
    pub fn new(sources: Vec<Box<dyn PacketSource>>) -> Self {
        let mut merged = MergedSource {
            sources,
            heads: BinaryHeap::new(),
            next_seq: 0,
            last_emitted: SimTime::ZERO,
        };
        for idx in 0..merged.sources.len() {
            merged.refill(idx);
        }
        merged
    }

    fn refill(&mut self, idx: usize) {
        if let Some(pkt) = self.sources[idx].next_packet() {
            self.heads.push(Reverse(Head {
                arrival: pkt.arrival,
                idx,
                pkt,
            }));
        }
    }
}

impl PacketSource for MergedSource {
    fn next_packet(&mut self) -> Option<Packet> {
        let Reverse(head) = self.heads.pop()?;
        self.refill(head.idx);
        let mut pkt = head.pkt;
        debug_assert!(
            pkt.arrival >= self.last_emitted,
            "source {} emitted a packet out of order ({} < {})",
            head.idx,
            pkt.arrival,
            self.last_emitted,
        );
        self.last_emitted = pkt.arrival;
        pkt.seq = self.next_seq;
        self.next_seq += 1;
        Some(pkt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkts(times_ms: &[u64]) -> Vec<Packet> {
        times_ms
            .iter()
            .map(|&t| Packet::new(SimTime::from_millis(t)))
            .collect()
    }

    #[test]
    fn vec_source_sorts_input() {
        let mut s = VecSource::new(pkts(&[30, 10, 20]));
        let order: Vec<u64> = std::iter::from_fn(|| s.next_packet())
            .map(|p| p.arrival.as_nanos() / 1_000_000)
            .collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn merge_interleaves_in_time_order() {
        let a = Box::new(VecSource::new(pkts(&[0, 20, 40])));
        let b = Box::new(VecSource::new(pkts(&[10, 30, 50])));
        let mut m = MergedSource::new(vec![a, b]);
        let order: Vec<u64> = std::iter::from_fn(|| m.next_packet())
            .map(|p| p.arrival.as_nanos() / 1_000_000)
            .collect();
        assert_eq!(order, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn merge_assigns_unique_increasing_seq() {
        let a = Box::new(VecSource::new(pkts(&[0, 5])));
        let b = Box::new(VecSource::new(pkts(&[2, 7])));
        let mut m = MergedSource::new(vec![a, b]);
        let seqs: Vec<u64> = std::iter::from_fn(|| m.next_packet())
            .map(|p| p.seq)
            .collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn merge_tie_break_is_deterministic() {
        let run = || {
            let a = Box::new(VecSource::new(pkts(&[5, 5])));
            let b = Box::new(VecSource::new(pkts(&[5])));
            let mut m = MergedSource::new(vec![a, b]);
            std::iter::from_fn(move || m.next_packet())
                .map(|p| p.seq)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
        assert_eq!(run().len(), 3);
    }

    #[test]
    fn empty_merge_is_empty() {
        let mut m = MergedSource::new(vec![]);
        assert!(m.next_packet().is_none());
    }
}
