//! The discrete-event simulation engine.
//!
//! The engine models the paper's testbed topology reduced to its essential
//! element: one switch in front of one bottleneck output link. Input
//! capacity is assumed larger than the output link (paper §3.1), so
//! arrivals are taken directly from the workload source. Three event kinds
//! are interleaved in exact time order:
//!
//! 1. **Packet arrival** — the switch's data path runs (`ingress`).
//! 2. **Transmission completion** — the link frees and the next packet is
//!    pulled from the switch (`dequeue`).
//! 3. **Control tick** — the switch's control plane runs (`control_tick`),
//!    at a fixed configurable period. This is where the paper's reaction
//!    time lives: ACC-Turbo's priority updates only take effect at ticks.
//!
//! The engine is synchronous and single-threaded: the workload is CPU-bound
//! and determinism is a hard requirement for figure regeneration, so (per
//! the networking guides) an async runtime would buy nothing here.

use crate::fault::{ControlAction, FaultInjector};
use crate::latency::DelayHistogram;
use crate::packet::{Dropped, Packet};
use crate::source::PacketSource;
use crate::stats::StatsCollector;
use crate::switch::Switch;
use crate::time::{SimDuration, SimTime};
use crate::units::Bandwidth;
use accturbo_obs::{Event, FlowKey, MetricsHandle, NoopTracer, Telemetry, Tracer};

/// The three event kinds the engine schedules, in tie-break priority
/// order: at equal timestamps a transmission completion is processed
/// before the control plane runs, and the control plane runs before a new
/// arrival is admitted (the dispatch order of the original min-scan's
/// `if t == t_tx` / `else if t == t_ctl` / `else` chain).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventSlot {
    /// Output-link transmission completion.
    Tx = 0,
    /// Control-plane tick.
    Control = 1,
    /// Next packet arrival.
    Arrival = 2,
}

/// Slot scan order == tie-break priority order.
const SLOT_ORDER: [EventSlot; 3] = [EventSlot::Tx, EventSlot::Control, EventSlot::Arrival];

/// A fixed three-slot event calendar: each slot holds the next firing
/// time of one event kind, or `SimTime::MAX` for "not scheduled".
///
/// This replaces the engine's per-iteration `Option` unwrapping and
/// sentinel `min`-chain with one small array the optimizer keeps in
/// registers, and it makes phantom events structurally impossible:
/// [`earliest`](Self::earliest) returns `None` when nothing is scheduled
/// instead of a `SimTime::MAX` pseudo-winner the caller must remember to
/// filter out.
#[derive(Debug, Clone)]
pub struct EventCalendar {
    when: [SimTime; 3],
}

impl Default for EventCalendar {
    fn default() -> Self {
        Self::new()
    }
}

impl EventCalendar {
    /// An empty calendar (nothing scheduled).
    pub fn new() -> Self {
        EventCalendar {
            when: [SimTime::MAX; 3],
        }
    }

    /// Schedules (or reschedules) `slot` to fire at `at`.
    pub fn schedule(&mut self, slot: EventSlot, at: SimTime) {
        debug_assert!(
            at != SimTime::MAX,
            "SimTime::MAX is the not-scheduled sentinel"
        );
        self.when[slot as usize] = at;
    }

    /// Unschedules `slot`.
    pub fn cancel(&mut self, slot: EventSlot) {
        self.when[slot as usize] = SimTime::MAX;
    }

    /// Whether `slot` currently has a firing time.
    pub fn is_scheduled(&self, slot: EventSlot) -> bool {
        self.when[slot as usize] != SimTime::MAX
    }

    /// The firing time of `slot`, if scheduled.
    pub fn scheduled_at(&self, slot: EventSlot) -> Option<SimTime> {
        let t = self.when[slot as usize];
        (t != SimTime::MAX).then_some(t)
    }

    /// The earliest scheduled event, if any. Ties resolve in
    /// [`EventSlot`] priority order: `Tx` before `Control` before
    /// `Arrival`.
    pub fn earliest(&self) -> Option<(EventSlot, SimTime)> {
        self.earliest_filtered(true)
    }

    /// [`earliest`](Self::earliest) with the control slot masked out —
    /// the engine gates control ticks on work remaining, so a drained
    /// simulation must not be kept alive by its own control plane.
    pub fn earliest_without_control(&self) -> Option<(EventSlot, SimTime)> {
        self.earliest_filtered(false)
    }

    fn earliest_filtered(&self, include_control: bool) -> Option<(EventSlot, SimTime)> {
        let mut best: Option<(EventSlot, SimTime)> = None;
        for slot in SLOT_ORDER {
            if slot == EventSlot::Control && !include_control {
                continue;
            }
            let t = self.when[slot as usize];
            if t == SimTime::MAX {
                continue;
            }
            // Strictly-less keeps the first slot in priority order on ties.
            if best.is_none_or(|(_, bt)| t < bt) {
                best = Some((slot, t));
            }
        }
        best
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Output-link (bottleneck) bandwidth.
    pub link: Bandwidth,
    /// Width of the statistics buckets.
    pub stats_interval: SimDuration,
    /// Control-plane period; `None` disables control ticks entirely.
    pub control_period: Option<SimDuration>,
    /// Hard stop: arrivals at or after this time are discarded and the
    /// simulation drains. `None` runs until the source is exhausted.
    pub end_time: Option<SimTime>,
}

impl EngineConfig {
    /// A config with the given link rate, 1-second stats buckets, no
    /// control plane and no end time.
    pub fn new(link: Bandwidth) -> Self {
        EngineConfig {
            link,
            stats_interval: SimDuration::from_secs(1),
            control_period: None,
            end_time: None,
        }
    }

    /// Sets the stats bucket width.
    pub fn with_stats_interval(mut self, interval: SimDuration) -> Self {
        self.stats_interval = interval;
        self
    }

    /// Enables control ticks at `period`.
    pub fn with_control_period(mut self, period: SimDuration) -> Self {
        assert!(!period.is_zero(), "control period must be positive");
        self.control_period = Some(period);
        self
    }

    /// Sets the hard stop time.
    pub fn with_end_time(mut self, end: SimTime) -> Self {
        self.end_time = Some(end);
        self
    }

    /// The standard experiment engine configuration: 1-second stats
    /// buckets, hard stop at `secs`, optional control plane — the shape
    /// every figure/scenario run uses.
    pub fn experiment(link_bps: u64, secs: u64, control_period: Option<SimDuration>) -> Self {
        let mut cfg = EngineConfig::new(Bandwidth::from_bps(link_bps))
            .with_stats_interval(SimDuration::from_secs(1))
            .with_end_time(SimTime::from_secs(secs));
        if let Some(p) = control_period {
            cfg = cfg.with_control_period(p);
        }
        cfg
    }
}

/// Result of a simulation run.
#[derive(Debug)]
pub struct RunResult {
    /// Per-class, per-bucket statistics.
    pub stats: StatsCollector,
    /// Per-class queueing-delay distribution (arrival → wire departure).
    pub delays: DelayHistogram,
    /// Time of the last event processed.
    pub final_time: SimTime,
    /// Total packets offered to the switch.
    pub arrivals: u64,
    /// Total packets transmitted on the output link.
    pub departures: u64,
    /// Total packets dropped (anywhere in the switch).
    pub drops: u64,
}

/// Runs `source` through `switch` under `cfg` and returns the statistics.
pub fn run(
    source: &mut dyn PacketSource,
    switch: &mut dyn Switch,
    cfg: &EngineConfig,
) -> RunResult {
    // NoopTracer monomorphizes: the tracing branches compile out of this
    // path entirely (verified by the `obs_overhead` bench).
    run_instrumented(source, switch, cfg, &mut NoopTracer, None)
}

/// Runs `source` through `switch` under `cfg`, emitting trace events to
/// `tracer` and (when given) engine-level metrics to `metrics`.
///
/// Trace events emitted here: `depart` and `drop` per packet,
/// `control_tick` per control-plane tick, and `stats_tick` at every
/// stats-interval boundary. Switch-internal events (enqueue, cluster
/// decisions, priority remaps) are emitted by the switch itself when its
/// own tracer is installed — share one `SharedTracer` across both to get
/// a single interleaved timeline.
///
/// When `metrics` is given, the engine registers `engine_arrivals` /
/// `engine_departures` / `engine_drops` counters, a `backlog_pkts`
/// gauge, and a `queue_depth_pkts` histogram, and snapshots the whole
/// registry at every stats-interval boundary (plus once at the end).
pub fn run_instrumented<T: Tracer + ?Sized>(
    source: &mut dyn PacketSource,
    switch: &mut dyn Switch,
    cfg: &EngineConfig,
    tracer: &mut T,
    metrics: Option<&MetricsHandle>,
) -> RunResult {
    run_with_faults(source, switch, cfg, tracer, metrics, None)
}

/// [`run_instrumented`] with an optional fault plane (DESIGN.md §9).
///
/// When `faults` is given, the injector is consulted at the engine's two
/// substrate decision points: each control-tick firing (which may be run,
/// suppressed — invoking the switch's `control_missed` hook — or
/// postponed) and each transmission start (whose serialization time is
/// stretched inside a link-flap window). Packet-level faults live in
/// [`crate::fault::FaultedSource`], outside the engine.
///
/// With `faults == None` every injection point is a not-taken branch on
/// unchanged state: the run is byte-identical to [`run_instrumented`]
/// and stays allocation-free in steady state (both locked down by the
/// fault lockdown test suite).
pub fn run_with_faults<T: Tracer + ?Sized>(
    source: &mut dyn PacketSource,
    switch: &mut dyn Switch,
    cfg: &EngineConfig,
    tracer: &mut T,
    metrics: Option<&MetricsHandle>,
    faults: Option<&FaultInjector>,
) -> RunResult {
    run_streamed(source, switch, cfg, tracer, metrics, faults, None)
}

/// The flow identity the streaming sampler keys on, taken from a packet.
#[inline]
fn flow_key(p: &Packet) -> FlowKey {
    FlowKey {
        src: u32::from(p.src),
        dst: u32::from(p.dst),
        sport: p.sport,
        dport: p.dport,
        proto: p.proto,
    }
}

/// [`run_with_faults`] with an optional streaming-telemetry bundle
/// (DESIGN.md §11).
///
/// When `telemetry` is given, the engine replaces the registry's
/// accumulate-and-dump snapshots with streaming: at every stats-interval
/// boundary (and once at the end) it calls [`Telemetry::on_period`] with
/// the live registry, which emits per-period counter deltas / gauge
/// last-values / histogram merges to the bundle's sink, feeds the
/// reservoir flow sampler from arrivals/drops, runs the pulse-onset
/// heuristic, and — via [`Telemetry::finish`] — exports the labeled
/// dataset. `Registry::snapshot` is never called on this path, so
/// telemetry memory stays bounded by the sink/ring/reservoir capacities
/// for arbitrarily long runs.
///
/// With `telemetry == None` every hook is a not-taken branch on
/// unchanged state: the run is byte-identical to [`run_with_faults`].
pub fn run_streamed<T: Tracer + ?Sized>(
    source: &mut dyn PacketSource,
    switch: &mut dyn Switch,
    cfg: &EngineConfig,
    tracer: &mut T,
    metrics: Option<&MetricsHandle>,
    faults: Option<&FaultInjector>,
    mut telemetry: Option<&mut Telemetry>,
) -> RunResult {
    let mut stats = StatsCollector::new(cfg.stats_interval);
    let mut delays = DelayHistogram::new();
    let mut drops_buf: Vec<Dropped> = Vec::new();

    let ids = metrics.map(|m| {
        let mut r = m.borrow_mut();
        (
            r.counter("engine_arrivals"),
            r.counter("engine_departures"),
            r.counter("engine_drops"),
            r.gauge("backlog_pkts"),
            r.histogram(
                "queue_depth_pkts",
                &[
                    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
                ],
            ),
        )
    });

    // The calendar owns the firing times; `pending`/`in_flight` own the
    // corresponding payloads. The drop buffer above is the only per-event
    // scratch and is reused across the whole run: after the first few
    // events warm the buffers up, the loop itself allocates nothing
    // (locked down by the `engine_steady_state_does_not_allocate` test).
    let mut calendar = EventCalendar::new();
    let mut pending: Option<Packet> = next_arrival(source, cfg.end_time);
    if let Some(p) = &pending {
        calendar.schedule(EventSlot::Arrival, p.arrival);
    }
    let mut in_flight: Option<Packet> = None;
    if let Some(period) = cfg.control_period {
        calendar.schedule(EventSlot::Control, SimTime::ZERO + period);
    }

    let mut now = SimTime::ZERO;
    let (mut arrivals, mut departures, mut total_drops) = (0u64, 0u64, 0u64);
    let mut control_ticks = 0u64;
    let mut stats_bucket = 0u64;
    // A control tick the injector postponed: when it finally fires it runs
    // unconditionally — a delayed tick can be late, but never lost twice.
    let mut control_delayed = false;

    loop {
        // Control ticks only matter while there is still work, so the loop
        // exits when both the source and the switch are drained (a control
        // plane must not keep its own simulation alive forever).
        let has_work = calendar.is_scheduled(EventSlot::Tx)
            || calendar.is_scheduled(EventSlot::Arrival)
            || switch.backlog_pkts() > 0;
        let next = if has_work {
            calendar.earliest()
        } else {
            calendar.earliest_without_control()
        };
        let Some((slot, t)) = next else {
            break;
        };
        debug_assert!(t >= now, "event time went backwards");
        now = t;

        // Stats-interval boundary: note the tick and snapshot metrics.
        let bucket = now.bucket(cfg.stats_interval);
        if bucket != stats_bucket {
            stats_bucket = bucket;
            let boundary_ns = bucket * cfg.stats_interval.as_nanos();
            if tracer.enabled() {
                tracer.record(boundary_ns, &Event::StatsTick { bucket });
            }
            if let (Some(m), Some(ids)) = (metrics, &ids) {
                let mut r = m.borrow_mut();
                r.set(ids.3, switch.backlog_pkts() as f64);
                match telemetry.as_mut() {
                    Some(t) => t.on_period(boundary_ns, switch.backlog_pkts(), Some(&r)),
                    None => r.snapshot(boundary_ns),
                }
            } else if let Some(t) = telemetry.as_mut() {
                t.on_period(boundary_ns, switch.backlog_pkts(), None);
            }
        }

        match slot {
            EventSlot::Tx => {
                // Transmission completes: the packet leaves on the wire.
                let pkt = in_flight.take().expect("Tx slot implies in-flight");
                calendar.cancel(EventSlot::Tx);
                stats.on_depart(&pkt, now);
                delays.record(pkt.class, now.saturating_since(pkt.arrival));
                departures += 1;
                if tracer.enabled() {
                    tracer.record(
                        now.as_nanos(),
                        &Event::Depart {
                            class: pkt.class.0,
                            size: pkt.size,
                        },
                    );
                }
                if let (Some(m), Some(ids)) = (metrics, &ids) {
                    m.borrow_mut().inc(ids.1, 1);
                }
                if let Some(t) = telemetry.as_mut() {
                    t.on_depart(pkt.size);
                }
            }
            EventSlot::Control => {
                let period = cfg.control_period.expect("Control slot implies a period");
                let action = match faults {
                    Some(f) if !control_delayed => f.control_action(now),
                    _ => ControlAction::Run,
                };
                match action {
                    ControlAction::Run => {
                        control_delayed = false;
                        switch.control_tick(now);
                        control_ticks += 1;
                        if tracer.enabled() {
                            tracer.record(
                                now.as_nanos(),
                                &Event::ControlTick {
                                    tick: control_ticks,
                                },
                            );
                        }
                        calendar.schedule(EventSlot::Control, now + period);
                    }
                    ControlAction::Skip => {
                        switch.control_missed(now);
                        calendar.schedule(EventSlot::Control, now + period);
                    }
                    ControlAction::Delay(d) => {
                        control_delayed = true;
                        calendar.schedule(EventSlot::Control, now + d);
                    }
                }
            }
            EventSlot::Arrival => {
                let pkt = pending
                    .take()
                    .expect("Arrival slot implies a pending packet");
                calendar.cancel(EventSlot::Arrival);
                stats.on_arrival(&pkt);
                arrivals += 1;
                if let Some(t) = telemetry.as_mut() {
                    t.on_arrival(now.as_nanos(), flow_key(&pkt), pkt.class.0, pkt.size);
                }
                drops_buf.clear();
                switch.ingress(pkt, now, &mut drops_buf);
                for d in &drops_buf {
                    stats.on_drop(d, now);
                    if let Some(t) = telemetry.as_mut() {
                        t.on_drop(&flow_key(&d.packet));
                    }
                    if tracer.enabled() {
                        tracer.record(
                            now.as_nanos(),
                            &Event::Drop {
                                queue: None,
                                class: d.packet.class.0,
                                size: d.packet.size,
                                reason: d.reason.name(),
                            },
                        );
                    }
                }
                total_drops += drops_buf.len() as u64;
                if let (Some(m), Some(ids)) = (metrics, &ids) {
                    let mut r = m.borrow_mut();
                    r.inc(ids.0, 1);
                    if !drops_buf.is_empty() {
                        r.inc(ids.2, drops_buf.len() as u64);
                    }
                    r.observe(ids.4, switch.backlog_pkts() as f64);
                }
                pending = next_arrival(source, cfg.end_time);
                if let Some(p) = &pending {
                    calendar.schedule(EventSlot::Arrival, p.arrival);
                }
            }
        }

        // Whenever the link is idle and the switch has backlog, start the
        // next transmission.
        if in_flight.is_none() {
            if let Some(pkt) = switch.dequeue(now) {
                let mut tx = cfg.link.tx_time(pkt.size);
                if let Some(f) = faults {
                    let scale = f.link_scale(now);
                    if scale < 1.0 {
                        tx = SimDuration::from_nanos((tx.as_nanos() as f64 / scale).ceil() as u64);
                    }
                }
                calendar.schedule(EventSlot::Tx, now + tx);
                in_flight = Some(pkt);
            }
        }
    }

    // Final snapshot (or streamed final period) so short runs still
    // export at least one.
    if let (Some(m), Some(ids)) = (metrics, &ids) {
        let mut r = m.borrow_mut();
        r.set(ids.3, switch.backlog_pkts() as f64);
        match telemetry.as_mut() {
            Some(t) => t.finish(now.as_nanos(), switch.backlog_pkts(), Some(&r)),
            None => r.snapshot(now.as_nanos()),
        }
    } else if let Some(t) = telemetry.as_mut() {
        t.finish(now.as_nanos(), switch.backlog_pkts(), None);
    }

    RunResult {
        stats,
        delays,
        final_time: now,
        arrivals,
        departures,
        drops: total_drops,
    }
}

fn next_arrival(source: &mut dyn PacketSource, end: Option<SimTime>) -> Option<Packet> {
    let pkt = source.next_packet()?;
    match end {
        Some(end) if pkt.arrival >= end => None,
        _ => Some(pkt),
    }
}

/// The pre-calendar engine loop, kept verbatim (minus instrumentation,
/// which `NoopTracer` monomorphized away) as the benchmark baseline and
/// differential-test oracle for the [`EventCalendar`] refactor. Compiled
/// only with the `reference` cargo feature.
#[cfg(feature = "reference")]
pub mod reference {
    use super::*;

    /// Runs `source` through `switch` with the original per-iteration
    /// `Option`/`SimTime::MAX` sentinel min-scan. Must stay
    /// result-identical to [`run`](super::run).
    pub fn run_reference(
        source: &mut dyn PacketSource,
        switch: &mut dyn Switch,
        cfg: &EngineConfig,
    ) -> RunResult {
        let mut stats = StatsCollector::new(cfg.stats_interval);
        let mut delays = DelayHistogram::new();
        let mut drops_buf: Vec<Dropped> = Vec::new();

        let mut pending: Option<Packet> = next_arrival(source, cfg.end_time);
        // In-flight transmission: completion time and the packet on the wire.
        let mut in_flight: Option<(SimTime, Packet)> = None;
        let mut control_next = cfg.control_period.map(|p| SimTime::ZERO + p);

        let mut now = SimTime::ZERO;
        let (mut arrivals, mut departures, mut total_drops) = (0u64, 0u64, 0u64);
        let mut stats_bucket = 0u64;

        loop {
            // Earliest of: tx completion, control tick, next arrival.
            let t_tx = in_flight.as_ref().map(|(t, _)| *t).unwrap_or(SimTime::MAX);
            let t_arr = pending.as_ref().map(|p| p.arrival).unwrap_or(SimTime::MAX);
            let t_ctl = if pending.is_some() || in_flight.is_some() || switch.backlog_pkts() > 0 {
                control_next.unwrap_or(SimTime::MAX)
            } else {
                SimTime::MAX
            };

            let t = t_tx.min(t_arr).min(t_ctl);
            if t == SimTime::MAX {
                break;
            }
            debug_assert!(t >= now, "event time went backwards");
            now = t;

            let bucket = now.bucket(cfg.stats_interval);
            if bucket != stats_bucket {
                stats_bucket = bucket;
            }

            if t == t_tx {
                let (_, pkt) = in_flight.take().expect("t_tx implies in-flight");
                stats.on_depart(&pkt, now);
                delays.record(pkt.class, now.saturating_since(pkt.arrival));
                departures += 1;
            } else if t == t_ctl {
                switch.control_tick(now);
                let period = cfg.control_period.expect("t_ctl implies a period");
                control_next = Some(now + period);
            } else {
                let pkt = pending.take().expect("t_arr implies a pending packet");
                stats.on_arrival(&pkt);
                arrivals += 1;
                drops_buf.clear();
                switch.ingress(pkt, now, &mut drops_buf);
                for d in &drops_buf {
                    stats.on_drop(d, now);
                }
                total_drops += drops_buf.len() as u64;
                pending = next_arrival(source, cfg.end_time);
            }

            if in_flight.is_none() {
                if let Some(pkt) = switch.dequeue(now) {
                    let done = now + cfg.link.tx_time(pkt.size);
                    in_flight = Some((done, pkt));
                }
            }
        }

        RunResult {
            stats,
            delays,
            final_time: now,
            arrivals,
            departures,
            drops: total_drops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::ClassId;
    use crate::queue::FifoQueue;
    use crate::source::VecSource;
    use crate::switch::SingleQueueSwitch;

    fn cbr_packets(n: u64, gap_us: u64, size: u32) -> Vec<Packet> {
        (0..n)
            .map(|i| Packet::new(SimTime::from_micros(i * gap_us)).with_size(size))
            .collect()
    }

    #[test]
    fn uncongested_link_delivers_everything() {
        // 1000-byte packets every 1 ms = 8 Mbps offered on a 10 Mbps link.
        let mut src = VecSource::new(cbr_packets(100, 1_000, 1000));
        let mut sw = SingleQueueSwitch::new(FifoQueue::new(100_000));
        let cfg = EngineConfig::new(Bandwidth::from_mbps(10));
        let res = run(&mut src, &mut sw, &cfg);
        assert_eq!(res.arrivals, 100);
        assert_eq!(res.departures, 100);
        assert_eq!(res.drops, 0);
    }

    #[test]
    fn instrumented_run_traces_and_snapshots() {
        use accturbo_obs::{shared, Registry, RingTracer};
        use std::cell::RefCell;
        use std::rc::Rc;

        // Same overload scenario as `overloaded_link_drops_the_excess`:
        // both departs and drops occur, and the run spans many stats
        // intervals.
        let mut src = VecSource::new(cbr_packets(2_000, 100, 1000));
        let mut sw = SingleQueueSwitch::new(FifoQueue::new(10_000));
        let cfg = EngineConfig::new(Bandwidth::from_mbps(10))
            .with_stats_interval(SimDuration::from_millis(20));
        let mut tracer = shared(RingTracer::new(100_000));
        let metrics = Rc::new(RefCell::new(Registry::new()));
        let res = run_instrumented(&mut src, &mut sw, &cfg, &mut tracer, Some(&metrics));

        let t = tracer.borrow();
        let departs = t.iter().filter(|(_, e)| e.kind() == "depart").count() as u64;
        let drops = t.iter().filter(|(_, e)| e.kind() == "drop").count() as u64;
        let ticks = t.iter().filter(|(_, e)| e.kind() == "stats_tick").count();
        assert_eq!(departs, res.departures);
        assert_eq!(drops, res.drops);
        assert!(ticks > 0, "run must cross stats-interval boundaries");

        // Re-registering returns the existing ids.
        let mut r = metrics.borrow_mut();
        let (ia, id, ix) = (
            r.counter("engine_arrivals"),
            r.counter("engine_departures"),
            r.counter("engine_drops"),
        );
        let arr = r.counter_value(ia);
        let dep = r.counter_value(id);
        let drp = r.counter_value(ix);
        assert_eq!(arr, res.arrivals);
        assert_eq!(dep, res.departures);
        assert_eq!(drp, res.drops);
        assert!(r.snapshot_count() > 1, "per-interval + final snapshots");
        assert!(!r.to_jsonl().is_empty());
    }

    #[test]
    fn plain_run_matches_instrumented_run() {
        let cfg = EngineConfig::new(Bandwidth::from_mbps(10));
        let mut src1 = VecSource::new(cbr_packets(500, 100, 1000));
        let mut sw1 = SingleQueueSwitch::new(FifoQueue::new(10_000));
        let a = run(&mut src1, &mut sw1, &cfg);
        let mut src2 = VecSource::new(cbr_packets(500, 100, 1000));
        let mut sw2 = SingleQueueSwitch::new(FifoQueue::new(10_000));
        let b = run_instrumented(&mut src2, &mut sw2, &cfg, &mut NoopTracer, None);
        assert_eq!(a.arrivals, b.arrivals);
        assert_eq!(a.departures, b.departures);
        assert_eq!(a.drops, b.drops);
        assert_eq!(a.final_time, b.final_time);
    }

    #[test]
    fn overloaded_link_drops_the_excess() {
        // 1000-byte packets every 100 us = 80 Mbps offered on a 10 Mbps
        // link with a small buffer: ~7/8 of traffic must drop.
        let mut src = VecSource::new(cbr_packets(2_000, 100, 1000));
        let mut sw = SingleQueueSwitch::new(FifoQueue::new(10_000));
        let cfg = EngineConfig::new(Bandwidth::from_mbps(10));
        let res = run(&mut src, &mut sw, &cfg);
        assert_eq!(res.arrivals, 2_000);
        assert_eq!(res.departures + res.drops, 2_000 /* conservation */);
        let drop_frac = res.drops as f64 / res.arrivals as f64;
        assert!(
            (drop_frac - 0.875).abs() < 0.02,
            "expected ~87.5% drops, got {drop_frac}"
        );
    }

    #[test]
    fn throughput_matches_link_capacity_under_overload() {
        let mut src = VecSource::new(cbr_packets(20_000, 100, 1000));
        let mut sw = SingleQueueSwitch::new(FifoQueue::new(50_000));
        let cfg = EngineConfig::new(Bandwidth::from_mbps(10))
            .with_stats_interval(SimDuration::from_millis(500));
        let res = run(&mut src, &mut sw, &cfg);
        // Middle buckets should be saturated at ~10 Mbps.
        let bps = res.stats.throughput_bps(2, ClassId::BENIGN);
        assert!(
            (bps - 10e6).abs() / 10e6 < 0.02,
            "expected ~10 Mbps, got {bps}"
        );
    }

    #[test]
    fn control_ticks_fire_at_period() {
        struct TickCounter {
            inner: SingleQueueSwitch<FifoQueue>,
            ticks: Vec<SimTime>,
        }
        impl Switch for TickCounter {
            fn ingress(&mut self, pkt: Packet, now: SimTime, drops: &mut Vec<Dropped>) {
                self.inner.ingress(pkt, now, drops);
            }
            fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
                self.inner.dequeue(now)
            }
            fn backlog_pkts(&self) -> usize {
                self.inner.backlog_pkts()
            }
            fn control_tick(&mut self, now: SimTime) {
                self.ticks.push(now);
            }
        }
        let mut src = VecSource::new(cbr_packets(50, 10_000, 1000)); // 0.5 s of traffic
        let mut sw = TickCounter {
            inner: SingleQueueSwitch::new(FifoQueue::new(100_000)),
            ticks: Vec::new(),
        };
        let cfg = EngineConfig::new(Bandwidth::from_mbps(100))
            .with_control_period(SimDuration::from_millis(100));
        run(&mut src, &mut sw, &cfg);
        assert!(!sw.ticks.is_empty());
        for (i, t) in sw.ticks.iter().enumerate() {
            assert_eq!(t.as_nanos(), (i as u64 + 1) * 100_000_000);
        }
    }

    #[test]
    fn end_time_truncates_the_workload() {
        let mut src = VecSource::new(cbr_packets(1_000, 1_000, 1000)); // 1 s
        let mut sw = SingleQueueSwitch::new(FifoQueue::new(100_000));
        let cfg =
            EngineConfig::new(Bandwidth::from_mbps(100)).with_end_time(SimTime::from_millis(100));
        let res = run(&mut src, &mut sw, &cfg);
        assert_eq!(res.arrivals, 100);
    }

    #[test]
    fn calendar_earliest_picks_min_and_breaks_ties_by_priority() {
        let mut cal = EventCalendar::new();
        assert_eq!(cal.earliest(), None, "empty calendar has no events");

        cal.schedule(EventSlot::Arrival, SimTime::from_micros(5));
        cal.schedule(EventSlot::Tx, SimTime::from_micros(9));
        assert_eq!(
            cal.earliest(),
            Some((EventSlot::Arrival, SimTime::from_micros(5)))
        );

        // Equal times: Tx beats Control beats Arrival.
        cal.schedule(EventSlot::Tx, SimTime::from_micros(5));
        cal.schedule(EventSlot::Control, SimTime::from_micros(5));
        assert_eq!(
            cal.earliest(),
            Some((EventSlot::Tx, SimTime::from_micros(5)))
        );
        cal.cancel(EventSlot::Tx);
        assert_eq!(
            cal.earliest(),
            Some((EventSlot::Control, SimTime::from_micros(5)))
        );
        assert_eq!(
            cal.earliest_without_control(),
            Some((EventSlot::Arrival, SimTime::from_micros(5)))
        );

        cal.cancel(EventSlot::Control);
        cal.cancel(EventSlot::Arrival);
        assert_eq!(cal.earliest(), None);
        assert!(!cal.is_scheduled(EventSlot::Arrival));
    }

    #[test]
    fn control_plane_does_not_keep_a_drained_simulation_alive() {
        // An empty workload with a control period must terminate with
        // zero ticks — the `SimTime::MAX` sentinel of the old loop (and
        // the work gate of the new one) must never elect a phantom event.
        struct Panicking;
        impl Switch for Panicking {
            fn ingress(&mut self, _: Packet, _: SimTime, _: &mut Vec<Dropped>) {
                panic!("no packets exist");
            }
            fn dequeue(&mut self, _: SimTime) -> Option<Packet> {
                None
            }
            fn backlog_pkts(&self) -> usize {
                0
            }
            fn control_tick(&mut self, _: SimTime) {
                panic!("a control tick fired with no work in the system");
            }
        }
        let mut src = VecSource::new(Vec::new());
        let mut sw = Panicking;
        let cfg = EngineConfig::new(Bandwidth::from_mbps(10))
            .with_control_period(SimDuration::from_millis(1));
        let res = run(&mut src, &mut sw, &cfg);
        assert_eq!(res.arrivals, 0);
        assert_eq!(res.final_time, SimTime::ZERO);
    }

    #[test]
    fn tx_completion_beats_simultaneous_arrival() {
        // Packet 0 takes exactly 800 us on the wire (1000 B at 10 Mbps);
        // packet 1 arrives at that same instant. The Tx slot's priority
        // means the depart is processed first, so the arrival sees an
        // empty switch and goes straight into service with no queueing
        // delay.
        let mut src = VecSource::new(vec![
            Packet::new(SimTime::ZERO).with_size(1000),
            Packet::new(SimTime::from_micros(800)).with_size(1000),
        ]);
        let mut sw = SingleQueueSwitch::new(FifoQueue::new(100_000));
        let cfg = EngineConfig::new(Bandwidth::from_mbps(10));
        let res = run(&mut src, &mut sw, &cfg);
        assert_eq!(res.departures, 2);
        assert_eq!(res.final_time, SimTime::from_micros(1600));
        let (p50, max) = (
            res.delays.percentile(ClassId::BENIGN, 50.0),
            res.delays.percentile(ClassId::BENIGN, 100.0),
        );
        assert_eq!(p50, max, "neither packet ever waited behind the other");
    }

    #[test]
    fn conservation_holds_exactly() {
        let mut src = VecSource::new(cbr_packets(5_000, 50, 1200));
        let mut sw = SingleQueueSwitch::new(FifoQueue::new(20_000));
        let cfg = EngineConfig::new(Bandwidth::from_mbps(20));
        let res = run(&mut src, &mut sw, &cfg);
        assert_eq!(res.arrivals, res.departures + res.drops);
        assert_eq!(res.stats.total_arrived(ClassId::BENIGN).pkts, res.arrivals);
        assert_eq!(
            res.stats.total_departed(ClassId::BENIGN).pkts,
            res.departures
        );
    }
}
