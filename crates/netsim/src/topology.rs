//! Multi-switch topologies with hop-by-hop pushback (DESIGN.md §13).
//!
//! The single-switch engine models the paper's testbed reduced to one
//! bottleneck. The ACC lineage (Mahajan 2002) argues the interesting
//! pulse-wave dynamics are multi-hop: pulses converging from many ingress
//! points while rate-limit requests propagate upstream. This module grows
//! the simulator into a small vocabulary of tree topologies where
//!
//! * every node is an independent [`Switch`] (any defense),
//! * every link carries serialization (its [`Bandwidth`]) plus a
//!   propagation delay, and
//! * ACC pushback messages travel hop-by-hop against the traffic
//!   direction, one link delay per hop, narrowing the policed aggregate
//!   to what each hop actually observes.
//!
//! The topology layer **composes** the existing switches — it schedules
//! per-node Tx/Control/Arrival events with exactly the single-engine's
//! tie-break discipline (Tx before Control before Arrival at equal
//! timestamps, then a dequeue attempt after every event), so a
//! one-node topology is bit-identical to [`crate::engine::run`].
//!
//! All shapes are trees rooted at the bottleneck: traffic enters at the
//! leaves, flows toward the root, and departs on the root's output link
//! (the victim side). Pushback messages flow the other way.

use crate::engine::RunResult;
use crate::latency::DelayHistogram;
use crate::packet::{DropReason, Dropped, Packet};
use crate::rate::TokenBucket;
use crate::source::PacketSource;
use crate::stats::StatsCollector;
use crate::switch::Switch;
use crate::time::{SimDuration, SimTime};
use crate::units::Bandwidth;
use accturbo_obs::{Event, NoopTracer, Tracer};
use std::collections::VecDeque;

/// One directed link: serialization rate plus propagation delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSpec {
    /// Serialization bandwidth.
    pub bandwidth: Bandwidth,
    /// Propagation delay added after serialization completes.
    pub delay: SimDuration,
}

impl LinkSpec {
    /// A link with the given rate and delay.
    pub fn new(bandwidth: Bandwidth, delay: SimDuration) -> Self {
        LinkSpec { bandwidth, delay }
    }
}

/// An aggregate rate-limit request: "police traffic destined to
/// `addr/len` down to `bps`" — the payload of a hop-by-hop pushback
/// message. Address-generic so the substrate does not depend on any
/// particular defense's prefix type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggLimit {
    /// Prefix address (host byte order).
    pub addr: u32,
    /// Prefix length in bits (0 = everything).
    pub len: u8,
    /// Allocated rate, bits per second.
    pub bps: u64,
}

impl AggLimit {
    /// Whether `ip` falls inside the aggregate.
    pub fn contains(&self, ip: u32) -> bool {
        if self.len == 0 {
            return true;
        }
        let shift = 32 - self.len as u32;
        (ip >> shift) == (self.addr >> shift)
    }
}

/// A tree of switches rooted at the bottleneck. Node indices are dense;
/// every node has one output link (toward its parent, or — for the root —
/// the bottleneck link itself).
#[derive(Debug, Clone)]
pub struct Topology {
    /// `parents[i]` — `None` exactly for the root.
    parents: Vec<Option<usize>>,
    /// `links[i]` — node `i`'s output link.
    links: Vec<LinkSpec>,
    /// Ingress nodes in placement-index order.
    leaves: Vec<usize>,
    /// `children[i]` — nodes whose parent is `i`, ascending.
    children: Vec<Vec<usize>>,
    root: usize,
}

impl Topology {
    fn assemble(parents: Vec<Option<usize>>, links: Vec<LinkSpec>, leaves: Vec<usize>) -> Self {
        assert_eq!(parents.len(), links.len());
        let root = parents
            .iter()
            .position(|p| p.is_none())
            .expect("a topology needs a root");
        let mut children = vec![Vec::new(); parents.len()];
        for (i, p) in parents.iter().enumerate() {
            if let Some(p) = p {
                children[*p].push(i);
            }
        }
        Topology {
            parents,
            links,
            leaves,
            children,
            root,
        }
    }

    /// A chain of `n ≥ 1` switches: leaf `0 → 1 → … → n-1 →` sink. With
    /// `n == 1` this is exactly the single-switch model.
    pub fn line(n: usize, uplink: LinkSpec, bottleneck: LinkSpec) -> Self {
        assert!(n >= 1, "line topology needs at least one switch");
        let parents = (0..n)
            .map(|i| if i + 1 < n { Some(i + 1) } else { None })
            .collect();
        let links = (0..n)
            .map(|i| if i + 1 < n { uplink } else { bottleneck })
            .collect();
        Topology::assemble(parents, links, vec![0])
    }

    /// `n ≥ 1` edge switches all feeding one core: edges `0..n`, core `n`.
    pub fn star(n: usize, uplink: LinkSpec, bottleneck: LinkSpec) -> Self {
        assert!(n >= 1, "star topology needs at least one edge");
        let mut parents: Vec<Option<usize>> = (0..n).map(|_| Some(n)).collect();
        parents.push(None);
        let mut links: Vec<LinkSpec> = (0..n).map(|_| uplink).collect();
        links.push(bottleneck);
        Topology::assemble(parents, links, (0..n).collect())
    }

    /// A two-level `k`-ary tree (`k ≥ 2`): `k²` edge leaves, `k`
    /// aggregation switches, one core. Edge `e` homes to aggregation
    /// `e / k`.
    pub fn fattree(k: usize, uplink: LinkSpec, bottleneck: LinkSpec) -> Self {
        assert!(k >= 2, "fattree needs k >= 2");
        let edges = k * k;
        let core = edges + k;
        let mut parents: Vec<Option<usize>> = (0..edges).map(|e| Some(edges + e / k)).collect();
        parents.extend((0..k).map(|_| Some(core)));
        parents.push(None);
        let mut links: Vec<LinkSpec> = (0..edges + k).map(|_| uplink).collect();
        links.push(bottleneck);
        Topology::assemble(parents, links, (0..edges).collect())
    }

    /// A fixed asymmetric ISP-edge shape: four customer edges (`0..4`),
    /// two regional aggregators (`4`, `5`; edges 0–1 home to 4, edges
    /// 2–3 to 5), one core (`6`) in front of the bottleneck.
    pub fn isp_edge(uplink: LinkSpec, bottleneck: LinkSpec) -> Self {
        let parents = vec![Some(4), Some(4), Some(5), Some(5), Some(6), Some(6), None];
        let mut links = vec![uplink; 6];
        links.push(bottleneck);
        Topology::assemble(parents, links, vec![0, 1, 2, 3])
    }

    /// Number of switches.
    pub fn num_nodes(&self) -> usize {
        self.parents.len()
    }

    /// The ingress nodes, in placement-index order.
    pub fn leaves(&self) -> &[usize] {
        &self.leaves
    }

    /// The bottleneck node (its output link leaves the topology).
    pub fn root(&self) -> usize {
        self.root
    }

    /// Node `i`'s parent (`None` for the root).
    pub fn parent(&self, i: usize) -> Option<usize> {
        self.parents[i]
    }

    /// Node `i`'s output link.
    pub fn link(&self, i: usize) -> LinkSpec {
        self.links[i]
    }

    /// Switch count on the longest leaf → root path (a single switch has
    /// depth 1).
    pub fn depth(&self) -> usize {
        self.leaves
            .iter()
            .map(|&leaf| {
                let mut d = 1;
                let mut at = leaf;
                while let Some(p) = self.parents[at] {
                    d += 1;
                    at = p;
                }
                d
            })
            .max()
            .unwrap_or(1)
    }
}

/// The hop-by-hop pushback plan: how often the root re-reads its
/// switch's aggregate limits ([`Switch::pushback_limits`]) and
/// re-propagates them upstream.
#[derive(Debug, Clone, Copy)]
pub struct PushbackPlan {
    /// Refresh period at the root (messages then ripple upstream at one
    /// link delay per hop).
    pub refresh: SimDuration,
    /// Policer token-bucket depth, bytes.
    pub burst_bytes: u64,
}

impl PushbackPlan {
    /// A plan with the given refresh period and the classic-ACC 15 kB
    /// policer burst.
    pub fn new(refresh: SimDuration) -> Self {
        assert!(!refresh.is_zero(), "pushback refresh must be positive");
        PushbackPlan {
            refresh,
            burst_bytes: 15_000,
        }
    }
}

/// Topology-engine configuration — the multi-node analogue of
/// [`crate::engine::EngineConfig`] (the link rates live in the
/// [`Topology`] itself).
#[derive(Debug, Clone)]
pub struct TopologyConfig {
    /// Width of the statistics buckets.
    pub stats_interval: SimDuration,
    /// Control-plane period shared by every node; `None` disables ticks.
    pub control_period: Option<SimDuration>,
    /// Hard stop: arrivals at or after this time are discarded and the
    /// topology drains.
    pub end_time: Option<SimTime>,
    /// Hop-by-hop pushback (`None` = data plane only).
    pub pushback: Option<PushbackPlan>,
}

impl TopologyConfig {
    /// The standard experiment shape: 1-second buckets, hard stop at
    /// `secs`, optional control plane, no pushback.
    pub fn experiment(secs: u64, control_period: Option<SimDuration>) -> Self {
        TopologyConfig {
            stats_interval: SimDuration::from_secs(1),
            control_period,
            end_time: Some(SimTime::from_secs(secs)),
            pushback: None,
        }
    }

    /// Enables hop-by-hop pushback.
    pub fn with_pushback(mut self, plan: PushbackPlan) -> Self {
        self.pushback = Some(plan);
        self
    }
}

/// Result of a topology run: the familiar end-to-end [`RunResult`]
/// (arrivals at the leaves, departures on the root's output link) plus
/// per-node accounting and the pushback propagation record.
#[derive(Debug)]
pub struct TopologyRunResult {
    /// End-to-end statistics (drops anywhere count in `result.drops`).
    pub result: RunResult,
    /// Drops per node (switch drops + pushback-policer drops).
    pub node_drops: Vec<u64>,
    /// Packets still queued across all switches at end-of-run.
    pub backlog_pkts: usize,
    /// Inter-switch link crossings (0 for a single-node topology).
    pub hops: u64,
    /// Pushback limit messages delivered (installs + refreshes).
    pub pushback_installs: u64,
    /// Per node: when the first pushback limit arrived, if ever. The
    /// leaf entries are the convergence record — a limit reaching a leaf
    /// has traversed the whole path.
    pub node_first_limit: Vec<Option<SimTime>>,
}

/// A policer installed at a node by a pushback message.
#[derive(Debug)]
struct Policer {
    limit: AggLimit,
    tb: TokenBucket,
    last_update: SimTime,
}

/// Per-node forwarded-traffic window: (dst, bytes) since the recent
/// refreshes, halved each refresh so it tracks the present. Bounded: at
/// [`FWD_CAP`] entries new destinations stop being distinguished (they
/// are simply not recorded), which only degrades narrowing/division
/// fairness, never correctness.
const FWD_CAP: usize = 512;

fn fwd_record(fwd: &mut Vec<(u32, u64)>, dst: u32, bytes: u64) {
    for e in fwd.iter_mut() {
        if e.0 == dst {
            e.1 += bytes;
            return;
        }
    }
    if fwd.len() < FWD_CAP {
        fwd.push((dst, bytes));
    }
}

/// Narrows `limit` to the longest prefix covering every destination this
/// node actually forwarded inside it (aggregate narrowing, Mahajan §5):
/// a hop that only ever saw `198.18.5.0/26` inside a `/24` request
/// polices just the `/26`.
fn narrowed(limit: AggLimit, fwd: &[(u32, u64)]) -> AggLimit {
    let mut first: Option<u32> = None;
    let mut diff = 0u32;
    for &(dst, _) in fwd {
        if !limit.contains(dst) {
            continue;
        }
        match first {
            None => first = Some(dst),
            Some(f) => diff |= f ^ dst,
        }
    }
    let Some(f) = first else {
        return limit;
    };
    let common = diff.leading_zeros().min(32) as u8;
    let len = common.max(limit.len);
    let addr = if len == 0 {
        0
    } else {
        f & (u32::MAX << (32 - len as u32))
    };
    AggLimit {
        addr,
        len,
        bps: limit.bps,
    }
}

/// Divides `limit.bps` among `kids` in proportion to the bytes each
/// forwarded inside the aggregate, with a 10% even-split floor so a
/// currently-quiet upstream is never starved to zero — the same policy
/// as the two-tier pushback (`accturbo-acc`), applied per hop.
fn divide(kids: &[usize], limit: AggLimit, fwd: &[Vec<(u32, u64)>], out: &mut Vec<(usize, u64)>) {
    out.clear();
    let n = kids.len();
    if n == 0 {
        return;
    }
    let contribs: Vec<u64> = kids
        .iter()
        .map(|&c| {
            fwd[c]
                .iter()
                .filter(|(dst, _)| limit.contains(*dst))
                .map(|(_, b)| *b)
                .sum()
        })
        .collect();
    let total: u64 = contribs.iter().sum();
    for (i, &c) in kids.iter().enumerate() {
        let share = if total == 0 {
            limit.bps / n as u64
        } else {
            (limit.bps as f64 * (0.9 * contribs[i] as f64 / total as f64 + 0.1 / n as f64)) as u64
        };
        out.push((c, share.max(1)));
    }
}

/// Longest-prefix policer match; first-installed wins ties.
fn match_policer(policers: &mut [Policer], dst: u32) -> Option<&mut Policer> {
    let mut best: Option<usize> = None;
    for (i, p) in policers.iter().enumerate() {
        if p.limit.contains(dst) && best.is_none_or(|b| p.limit.len > policers[b].limit.len) {
            best = Some(i);
        }
    }
    best.map(move |i| &mut policers[i])
}

fn next_arrival(source: &mut dyn PacketSource, end: Option<SimTime>) -> Option<Packet> {
    let pkt = source.next_packet()?;
    match end {
        Some(end) if pkt.arrival >= end => None,
        _ => Some(pkt),
    }
}

/// The event kinds of the topology loop, in tie-break priority order.
/// The first three mirror the single engine's `Tx > Control > Arrival`
/// discipline exactly (wire deliveries and pushback messages do not
/// exist there); scanning in this order with a strict `<` comparison
/// keeps the one-node case bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// Transmission completion on node `.0`'s output link.
    Tx(usize),
    /// A packet finishing propagation on node `.0`'s output link.
    Deliver(usize),
    /// The shared control tick.
    Control,
    /// Pushback message `.0` (index into the in-flight list).
    Msg(usize),
    /// The pushback refresh at the root.
    Refresh,
    /// The next workload arrival.
    Arrival,
}

/// Runs `source` through the topology and returns end-to-end statistics.
/// `place` maps each arriving packet to a leaf ordinal
/// (`0..topo.leaves().len()`).
pub fn run_topology(
    topo: &Topology,
    switches: &mut [Box<dyn Switch>],
    source: &mut dyn PacketSource,
    place: &mut dyn FnMut(&Packet) -> usize,
    cfg: &TopologyConfig,
) -> TopologyRunResult {
    run_topology_traced(topo, switches, source, place, cfg, &mut NoopTracer)
}

/// [`run_topology`] with trace events: per-packet `depart`/`drop`,
/// `hop` per link crossing (tagged with the receiving node),
/// `pushback_limit` per message delivery (tagged with the installing
/// node), plus `control_tick` / `stats_tick`.
pub fn run_topology_traced<T: Tracer + ?Sized>(
    topo: &Topology,
    switches: &mut [Box<dyn Switch>],
    source: &mut dyn PacketSource,
    place: &mut dyn FnMut(&Packet) -> usize,
    cfg: &TopologyConfig,
    tracer: &mut T,
) -> TopologyRunResult {
    let n = topo.num_nodes();
    assert_eq!(switches.len(), n, "one switch per topology node");

    let mut stats = StatsCollector::new(cfg.stats_interval);
    let mut delays = DelayHistogram::new();
    let mut drops_buf: Vec<Dropped> = Vec::new();

    // Data plane state.
    let mut in_flight: Vec<Option<(SimTime, Packet)>> = (0..n).map(|_| None).collect();
    let mut wires: Vec<VecDeque<(SimTime, Packet)>> = (0..n).map(|_| VecDeque::new()).collect();
    let mut pending: Option<Packet> = next_arrival(source, cfg.end_time);

    // Control plane state.
    let mut control_next: Option<SimTime> = cfg.control_period.map(|p| SimTime::ZERO + p);
    let mut refresh_next: Option<SimTime> = cfg.pushback.map(|p| SimTime::ZERO + p.refresh);
    let mut msgs: Vec<(SimTime, u64, usize, AggLimit)> = Vec::new();
    let mut msg_seq = 0u64;
    let mut policers: Vec<Vec<Policer>> = (0..n).map(|_| Vec::new()).collect();
    let mut fwd: Vec<Vec<(u32, u64)>> = (0..n).map(|_| Vec::new()).collect();
    let mut limits_buf: Vec<AggLimit> = Vec::new();
    let mut shares_buf: Vec<(usize, u64)> = Vec::new();

    // Accounting.
    let mut now = SimTime::ZERO;
    let (mut arrivals, mut departures, mut total_drops) = (0u64, 0u64, 0u64);
    let mut node_drops = vec![0u64; n];
    let mut hops = 0u64;
    let mut pushback_installs = 0u64;
    let mut node_first_limit: Vec<Option<SimTime>> = vec![None; n];
    let mut control_ticks = 0u64;
    let mut stats_bucket = 0u64;

    // Ingress through the node's pushback policers, then the switch.
    macro_rules! ingress_at {
        ($node:expr, $pkt:expr) => {{
            let node: usize = $node;
            let pkt: Packet = $pkt;
            let policed = match match_policer(&mut policers[node], u32::from(pkt.dst)) {
                Some(p) => !p.tb.conforms(pkt.size, now),
                None => false,
            };
            if policed {
                let d = Dropped {
                    packet: pkt,
                    reason: DropReason::Policer,
                };
                stats.on_drop(&d, now);
                node_drops[node] += 1;
                total_drops += 1;
                if tracer.enabled() {
                    tracer.record(
                        now.as_nanos(),
                        &Event::Drop {
                            queue: None,
                            class: d.packet.class.0,
                            size: d.packet.size,
                            reason: DropReason::Policer.name(),
                        },
                    );
                }
            } else {
                drops_buf.clear();
                switches[node].ingress(pkt, now, &mut drops_buf);
                for d in &drops_buf {
                    stats.on_drop(d, now);
                    if tracer.enabled() {
                        tracer.record(
                            now.as_nanos(),
                            &Event::Drop {
                                queue: None,
                                class: d.packet.class.0,
                                size: d.packet.size,
                                reason: d.reason.name(),
                            },
                        );
                    }
                }
                node_drops[node] += drops_buf.len() as u64;
                total_drops += drops_buf.len() as u64;
            }
        }};
    }

    loop {
        // Control-plane events (ticks, refreshes, in-flight messages)
        // must not keep a drained topology alive — same gate as the
        // single engine, extended to wires.
        let has_work = pending.is_some()
            || in_flight.iter().any(|f| f.is_some())
            || wires.iter().any(|w| !w.is_empty())
            || switches.iter().any(|s| s.backlog_pkts() > 0);

        // Earliest event; scanning in `Ev` priority order with a strict
        // `<` makes the first candidate win ties.
        let mut next: Option<(Ev, SimTime)> = None;
        let mut consider = |ev: Ev, t: SimTime| {
            if next.as_ref().is_none_or(|&(_, bt)| t < bt) {
                next = Some((ev, t));
            }
        };
        for (i, f) in in_flight.iter().enumerate() {
            if let Some((t, _)) = f {
                consider(Ev::Tx(i), *t);
            }
        }
        for (i, w) in wires.iter().enumerate() {
            if let Some((t, _)) = w.front() {
                consider(Ev::Deliver(i), *t);
            }
        }
        if has_work {
            if let Some(t) = control_next {
                consider(Ev::Control, t);
            }
            for (k, (t, _, _, _)) in msgs.iter().enumerate() {
                consider(Ev::Msg(k), *t);
            }
            if let Some(t) = refresh_next {
                consider(Ev::Refresh, t);
            }
        }
        if let Some(p) = &pending {
            consider(Ev::Arrival, p.arrival);
        }
        let Some((ev, t)) = next else {
            break;
        };
        debug_assert!(t >= now, "event time went backwards");
        now = t;

        let bucket = now.bucket(cfg.stats_interval);
        if bucket != stats_bucket {
            stats_bucket = bucket;
            if tracer.enabled() {
                tracer.record(
                    bucket * cfg.stats_interval.as_nanos(),
                    &Event::StatsTick { bucket },
                );
            }
        }

        match ev {
            Ev::Tx(i) => {
                let (_, pkt) = in_flight[i].take().expect("Tx implies in-flight");
                if i == topo.root {
                    stats.on_depart(&pkt, now);
                    delays.record(pkt.class, now.saturating_since(pkt.arrival));
                    departures += 1;
                    if tracer.enabled() {
                        tracer.record(
                            now.as_nanos(),
                            &Event::Depart {
                                class: pkt.class.0,
                                size: pkt.size,
                            },
                        );
                    }
                } else {
                    fwd_record(&mut fwd[i], u32::from(pkt.dst), pkt.size as u64);
                    let deliver = now + topo.links[i].delay;
                    wires[i].push_back((deliver, pkt));
                }
            }
            Ev::Deliver(i) => {
                let (_, pkt) = wires[i].pop_front().expect("Deliver implies a wire packet");
                let parent = topo.parents[i].expect("only non-root links deliver");
                hops += 1;
                if tracer.enabled() {
                    tracer.record(
                        now.as_nanos(),
                        &Event::Hop {
                            node: parent,
                            class: pkt.class.0,
                            size: pkt.size,
                        },
                    );
                }
                ingress_at!(parent, pkt);
            }
            Ev::Control => {
                let period = cfg.control_period.expect("Control implies a period");
                for sw in switches.iter_mut() {
                    sw.control_tick(now);
                }
                control_ticks += 1;
                if tracer.enabled() {
                    tracer.record(
                        now.as_nanos(),
                        &Event::ControlTick {
                            tick: control_ticks,
                        },
                    );
                }
                control_next = Some(now + period);
            }
            Ev::Msg(k) => {
                let (_, _, node, limit) = msgs.swap_remove(k);
                let limit = narrowed(limit, &fwd[node]);
                let plan = cfg.pushback.expect("Msg implies pushback");
                match policers[node]
                    .iter_mut()
                    .find(|p| p.limit.addr == limit.addr && p.limit.len == limit.len)
                {
                    Some(p) => {
                        p.limit.bps = limit.bps;
                        p.tb.set_rate(Bandwidth::from_bps(limit.bps));
                        p.last_update = now;
                    }
                    None => policers[node].push(Policer {
                        limit,
                        tb: TokenBucket::new(Bandwidth::from_bps(limit.bps), plan.burst_bytes),
                        last_update: now,
                    }),
                }
                pushback_installs += 1;
                node_first_limit[node].get_or_insert(now);
                if tracer.enabled() {
                    tracer.record(
                        now.as_nanos(),
                        &Event::PushbackLimit {
                            upstream: node,
                            prefix: limit.addr,
                            prefix_len: limit.len,
                            bps: limit.bps,
                        },
                    );
                }
                // Keep rippling upstream: split this node's allocation
                // among its own children, one more link delay away.
                divide(&topo.children[node], limit, &fwd, &mut shares_buf);
                for &(child, bps) in shares_buf.iter() {
                    msgs.push((
                        now + topo.links[child].delay,
                        msg_seq,
                        child,
                        AggLimit { bps, ..limit },
                    ));
                    msg_seq += 1;
                }
            }
            Ev::Refresh => {
                let plan = cfg.pushback.expect("Refresh implies pushback");
                limits_buf.clear();
                switches[topo.root].pushback_limits(now, &mut limits_buf);
                for limit in &limits_buf {
                    divide(&topo.children[topo.root], *limit, &fwd, &mut shares_buf);
                    for &(child, bps) in shares_buf.iter() {
                        msgs.push((
                            now + topo.links[child].delay,
                            msg_seq,
                            child,
                            AggLimit { bps, ..*limit },
                        ));
                        msg_seq += 1;
                    }
                }
                // Age out policers for aggregates the root stopped
                // limiting, and decay the forwarded-traffic windows so
                // division/narrowing track the present.
                let horizon = plan.refresh.as_nanos().saturating_mul(3);
                for ps in policers.iter_mut() {
                    ps.retain(|p| now.saturating_since(p.last_update).as_nanos() <= horizon);
                }
                for w in fwd.iter_mut() {
                    for e in w.iter_mut() {
                        e.1 /= 2;
                    }
                    w.retain(|e| e.1 > 0);
                }
                refresh_next = Some(now + plan.refresh);
            }
            Ev::Arrival => {
                let pkt = pending.take().expect("Arrival implies a pending packet");
                let leaf = topo.leaves[place(&pkt)];
                stats.on_arrival(&pkt);
                arrivals += 1;
                ingress_at!(leaf, pkt);
                pending = next_arrival(source, cfg.end_time);
            }
        }

        // Whenever a link is idle and its switch has backlog, start the
        // next transmission (every node, every event — exactly the
        // single engine's post-event dequeue).
        for i in 0..n {
            if in_flight[i].is_none() {
                if let Some(pkt) = switches[i].dequeue(now) {
                    let done = now + topo.links[i].bandwidth.tx_time(pkt.size);
                    in_flight[i] = Some((done, pkt));
                }
            }
        }
    }

    let backlog_pkts = switches.iter().map(|s| s.backlog_pkts()).sum();
    TopologyRunResult {
        result: RunResult {
            stats,
            delays,
            final_time: now,
            arrivals,
            departures,
            drops: total_drops,
        },
        node_drops,
        backlog_pkts,
        hops,
        pushback_installs,
        node_first_limit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run, EngineConfig};
    use crate::queue::FifoQueue;
    use crate::source::VecSource;
    use crate::switch::SingleQueueSwitch;

    fn cbr_packets(n: u64, gap_us: u64, size: u32) -> Vec<Packet> {
        (0..n)
            .map(|i| Packet::new(SimTime::from_micros(i * gap_us)).with_size(size))
            .collect()
    }

    fn fifo_switches(n: usize, buf: u64) -> Vec<Box<dyn Switch>> {
        (0..n)
            .map(|_| Box::new(SingleQueueSwitch::new(FifoQueue::new(buf))) as Box<dyn Switch>)
            .collect()
    }

    fn mbps(m: u64) -> Bandwidth {
        Bandwidth::from_mbps(m)
    }

    #[test]
    fn shapes_have_the_advertised_structure() {
        let l = LinkSpec::new(mbps(12), SimDuration::from_micros(50));
        let b = LinkSpec::new(mbps(10), SimDuration::ZERO);

        let line = Topology::line(4, l, b);
        assert_eq!(line.num_nodes(), 4);
        assert_eq!(line.leaves(), &[0]);
        assert_eq!(line.root(), 3);
        assert_eq!(line.depth(), 4);

        let star = Topology::star(5, l, b);
        assert_eq!(star.num_nodes(), 6);
        assert_eq!(star.leaves().len(), 5);
        assert_eq!(star.root(), 5);
        assert_eq!(star.depth(), 2);

        let ft = Topology::fattree(3, l, b);
        assert_eq!(ft.num_nodes(), 13);
        assert_eq!(ft.leaves().len(), 9);
        assert_eq!(ft.depth(), 3);
        assert_eq!(ft.parent(0), Some(9));
        assert_eq!(ft.parent(8), Some(11));

        let isp = Topology::isp_edge(l, b);
        assert_eq!(isp.num_nodes(), 7);
        assert_eq!(isp.leaves().len(), 4);
        assert_eq!(isp.depth(), 3);
    }

    /// The load-bearing invariant: a one-node topology is the single
    /// engine, bit for bit (same stats buckets, same delays, same final
    /// time), because the event loop replays the same tie-break order.
    #[test]
    fn one_node_line_is_bit_identical_to_the_single_engine() {
        let packets = cbr_packets(3_000, 100, 1000); // 80 Mbps offered on 10 Mbps
        let cfg = EngineConfig::new(mbps(10)).with_end_time(SimTime::from_millis(250));
        let mut src = VecSource::new(packets.clone());
        let mut sw = SingleQueueSwitch::new(FifoQueue::new(10_000));
        let single = run(&mut src, &mut sw, &cfg);

        let topo = Topology::line(
            1,
            LinkSpec::new(mbps(12), SimDuration::from_micros(50)),
            LinkSpec::new(mbps(10), SimDuration::ZERO),
        );
        let mut switches = fifo_switches(1, 10_000);
        let mut src = VecSource::new(packets);
        let tcfg = TopologyConfig {
            stats_interval: SimDuration::from_secs(1),
            control_period: None,
            end_time: Some(SimTime::from_millis(250)),
            pushback: None,
        };
        let multi = run_topology(&topo, &mut switches, &mut src, &mut |_| 0, &tcfg);

        assert_eq!(format!("{single:?}"), format!("{:?}", multi.result));
        assert_eq!(multi.hops, 0);
        assert_eq!(multi.backlog_pkts, 0);
    }

    #[test]
    fn conservation_holds_across_every_shape() {
        let uplink = LinkSpec::new(mbps(12), SimDuration::from_micros(50));
        let bottleneck = LinkSpec::new(mbps(10), SimDuration::ZERO);
        let shapes: Vec<Topology> = vec![
            Topology::line(3, uplink, bottleneck),
            Topology::star(4, uplink, bottleneck),
            Topology::fattree(2, uplink, bottleneck),
            Topology::isp_edge(uplink, bottleneck),
        ];
        for topo in shapes {
            let leaves = topo.leaves().len();
            let mut switches = fifo_switches(topo.num_nodes(), 20_000);
            // 160 Mbps offered across the leaves: drops at edges and core.
            let mut src = VecSource::new(cbr_packets(4_000, 50, 1000));
            let cfg = TopologyConfig::experiment(1, None);
            let res = run_topology(
                &topo,
                &mut switches,
                &mut src,
                &mut |p| p.seq as usize % leaves,
                &cfg,
            );
            assert!(res.result.arrivals > 0);
            assert_eq!(
                res.result.arrivals,
                res.result.departures + res.result.drops + res.backlog_pkts as u64,
                "conservation violated on a {}-node topology",
                topo.num_nodes()
            );
            assert_eq!(
                res.result.drops,
                res.node_drops.iter().sum::<u64>(),
                "per-node drops must sum to the total"
            );
            assert!(res.hops > 0, "multi-node shapes must cross links");
        }
    }

    #[test]
    fn propagation_delay_shifts_departures() {
        // One packet through a 2-node line: serialization 800 us on each
        // link plus 100 us of propagation between the switches.
        let topo = Topology::line(
            2,
            LinkSpec::new(mbps(10), SimDuration::from_micros(100)),
            LinkSpec::new(mbps(10), SimDuration::ZERO),
        );
        let mut switches = fifo_switches(2, 100_000);
        let mut src = VecSource::new(vec![Packet::new(SimTime::ZERO).with_size(1000)]);
        let cfg = TopologyConfig::experiment(1, None);
        let res = run_topology(&topo, &mut switches, &mut src, &mut |_| 0, &cfg);
        assert_eq!(res.result.departures, 1);
        assert_eq!(res.result.final_time, SimTime::from_micros(1700));
        assert_eq!(res.hops, 1);
    }

    /// A stub bottleneck switch that requests one aggregate limit.
    struct Limiting {
        inner: SingleQueueSwitch<FifoQueue>,
        limit: AggLimit,
    }
    impl Switch for Limiting {
        fn ingress(&mut self, pkt: Packet, now: SimTime, drops: &mut Vec<Dropped>) {
            self.inner.ingress(pkt, now, drops);
        }
        fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
            self.inner.dequeue(now)
        }
        fn backlog_pkts(&self) -> usize {
            self.inner.backlog_pkts()
        }
        fn pushback_limits(&mut self, _now: SimTime, out: &mut Vec<AggLimit>) {
            out.push(self.limit);
        }
    }

    #[test]
    fn pushback_ripples_upstream_one_hop_delay_at_a_time() {
        let hop = SimDuration::from_millis(10);
        let topo = Topology::line(
            3,
            LinkSpec::new(mbps(12), hop),
            LinkSpec::new(mbps(10), SimDuration::ZERO),
        );
        let mut switches: Vec<Box<dyn Switch>> = fifo_switches(2, 100_000);
        switches.push(Box::new(Limiting {
            inner: SingleQueueSwitch::new(FifoQueue::new(100_000)),
            limit: AggLimit {
                addr: u32::from(std::net::Ipv4Addr::new(10, 0, 1, 1)),
                len: 24,
                bps: 1_000_000,
            },
        }));
        // 2 s of 8 Mbps keeps the topology busy across several refreshes.
        let mut src = VecSource::new(cbr_packets(2_000, 1_000, 1000));
        let cfg = TopologyConfig::experiment(2, None)
            .with_pushback(PushbackPlan::new(SimDuration::from_millis(500)));
        let res = run_topology(&topo, &mut switches, &mut src, &mut |_| 0, &cfg);

        // First refresh fires at 500 ms; node 1 (root's child) hears it
        // one hop later, node 0 one more hop after node 1 re-divides.
        let t1 = res.node_first_limit[1].expect("mid node must get a limit");
        let t0 = res.node_first_limit[0].expect("leaf must get a limit");
        assert_eq!(t1, SimTime::from_millis(510));
        assert_eq!(t0, SimTime::from_millis(520));
        assert!(res.node_first_limit[2].is_none(), "the root polices no one");
        assert!(res.pushback_installs >= 2);

        // The 1 Mbps limit on an 8 Mbps aggregate must police hard at
        // the leaf (policer drops show up in the per-node accounting).
        assert!(
            res.node_drops[0] > 0,
            "leaf policer must drop the excess: {:?}",
            res.node_drops
        );
    }

    #[test]
    fn narrowing_shrinks_to_the_observed_prefix() {
        let wide = AggLimit {
            addr: u32::from_be_bytes([198, 18, 0, 0]),
            len: 16,
            bps: 1_000_000,
        };
        // Only 198.18.5.{4,6} were forwarded: the common prefix is /30.
        let fwd = vec![
            (u32::from_be_bytes([198, 18, 5, 4]), 100),
            (u32::from_be_bytes([198, 18, 5, 6]), 100),
        ];
        let n = narrowed(wide, &fwd);
        assert_eq!(n.len, 30);
        assert_eq!(n.addr, u32::from_be_bytes([198, 18, 5, 4]));
        assert!(n.contains(u32::from_be_bytes([198, 18, 5, 6])));
        assert!(!n.contains(u32::from_be_bytes([198, 18, 9, 1])));

        // Nothing observed: the request passes through unchanged.
        assert_eq!(narrowed(wide, &[]), wide);
        // A single destination narrows to /32.
        let one = narrowed(wide, &[(u32::from_be_bytes([198, 18, 7, 7]), 1)]);
        assert_eq!(one.len, 32);
    }

    #[test]
    fn division_is_proportional_with_an_even_floor() {
        let limit = AggLimit {
            addr: 0,
            len: 0,
            bps: 1_000_000,
        };
        let fwd = vec![vec![(1, 900)], vec![(2, 100)]];
        let mut out = Vec::new();
        divide(&[0, 1], limit, &fwd, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].1, 860_000); // 0.9*0.9 + 0.1/2
        assert_eq!(out[1].1, 140_000);
        // No observations: even split.
        let empty = vec![Vec::new(), Vec::new()];
        divide(&[0, 1], limit, &empty, &mut out);
        assert_eq!(out[0].1, 500_000);
        assert_eq!(out[1].1, 500_000);
    }

    #[test]
    fn control_plane_does_not_keep_a_drained_topology_alive() {
        let topo = Topology::star(
            2,
            LinkSpec::new(mbps(12), SimDuration::from_micros(50)),
            LinkSpec::new(mbps(10), SimDuration::ZERO),
        );
        let mut switches = fifo_switches(3, 10_000);
        let mut src = VecSource::new(Vec::new());
        let mut cfg = TopologyConfig::experiment(10, Some(SimDuration::from_millis(1)));
        cfg.pushback = Some(PushbackPlan::new(SimDuration::from_millis(1)));
        let res = run_topology(&topo, &mut switches, &mut src, &mut |_| 0, &cfg);
        assert_eq!(res.result.arrivals, 0);
        assert_eq!(res.result.final_time, SimTime::ZERO);
        assert_eq!(res.pushback_installs, 0);
    }
}
