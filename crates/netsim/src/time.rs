//! Simulated time.
//!
//! All simulation time is integer nanoseconds since the start of the
//! simulation. Using integers (rather than `f64` seconds) keeps event
//! ordering exact and makes every experiment bit-reproducible, which the
//! figure-regeneration harness relies on.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation origin (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinitely far"
    /// sentinel when picking the earliest of several optional events.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Builds an instant from microseconds since simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Builds an instant from milliseconds since simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Builds an instant from whole seconds since simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Builds an instant from fractional seconds since simulation start.
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid SimTime seconds: {s}");
        SimTime((s * 1e9).round() as u64)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is
    /// actually later than `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// The index of the interval of width `w` this instant falls into.
    ///
    /// Used by time-series collectors to bucket events.
    pub fn bucket(self, w: SimDuration) -> u64 {
        assert!(w.0 > 0, "bucket width must be positive");
        self.0 / w.0
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Builds a duration from fractional seconds.
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "invalid SimDuration seconds: {s}"
        );
        SimDuration((s * 1e9).round() as u64)
    }

    /// Nanoseconds in this duration.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds in this duration.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True when this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction went negative"),
        )
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime minus SimDuration went negative"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction went negative"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self
            .0
            .checked_sub(rhs.0)
            .expect("SimDuration subtraction went negative");
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3_000));
        assert_eq!(SimTime::from_micros(5), SimTime::from_nanos(5_000));
        assert_eq!(
            SimDuration::from_secs(1),
            SimDuration::from_nanos(1e9 as u64)
        );
    }

    #[test]
    fn float_round_trip() {
        let t = SimTime::from_secs_f64(1.25);
        assert_eq!(t.as_nanos(), 1_250_000_000);
        assert!((t.as_secs_f64() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert_eq!(t - SimTime::from_secs(1), SimDuration::from_millis(500));
        assert_eq!(t - SimDuration::from_millis(500), SimTime::from_secs(1));
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
    }

    #[test]
    fn bucketing() {
        let w = SimDuration::from_secs(1);
        assert_eq!(SimTime::from_millis(999).bucket(w), 0);
        assert_eq!(SimTime::from_millis(1000).bucket(w), 1);
        assert_eq!(SimTime::from_millis(2500).bucket(w), 2);
    }

    #[test]
    #[should_panic(expected = "went negative")]
    fn negative_subtraction_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn duration_scaling() {
        assert_eq!(SimDuration::from_secs(2) * 3, SimDuration::from_secs(6));
        assert_eq!(SimDuration::from_secs(6) / 3, SimDuration::from_secs(2));
    }
}
