//! Struct-of-arrays packet storage for the batched datapath.
//!
//! The event loop's per-packet hot data — arrival time, wire size, and
//! the classification feature vector — lives in parallel columns so the
//! sharded engine and the clustering kernels can scan it linearly instead
//! of chasing per-packet structs. The full [`Packet`] is kept as a payload
//! column for the moment a packet actually enters the switch; everything
//! before that point reads only the hot columns.
//!
//! An arena is filled once per shard per time window and recycled:
//! [`clear`](PacketArena::clear) keeps every column's capacity, so after
//! the first few windows warm the buffers up, steady state allocates
//! nothing (locked down by the zero-allocation test suite). Each clear
//! bumps a generation counter; a [`PacketHandle`] carries the generation
//! it was issued under, so a handle held across a window boundary is
//! detected instead of silently reading a recycled row.

use crate::packet::Packet;
use crate::switch::FeatureExtractor;
use crate::time::SimTime;

/// A generation-checked reference to one packet row in a [`PacketArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketHandle {
    index: u32,
    generation: u32,
}

impl PacketHandle {
    /// The row index this handle points at (valid only for the generation
    /// it was issued under).
    pub fn index(self) -> usize {
        self.index as usize
    }

    /// The arena generation this handle was issued under.
    pub fn generation(self) -> u32 {
        self.generation
    }
}

/// Struct-of-arrays storage for one window's worth of packets.
#[derive(Debug)]
pub struct PacketArena {
    feature_width: usize,
    arrivals: Vec<SimTime>,
    sizes: Vec<u32>,
    seqs: Vec<u64>,
    features: Vec<u32>,
    payload: Vec<Packet>,
    scratch: Vec<u32>,
    generation: u32,
}

impl PacketArena {
    /// An empty arena whose feature column holds `feature_width` values
    /// per packet (zero for switches without a feature extractor).
    pub fn new(feature_width: usize) -> Self {
        PacketArena {
            feature_width,
            arrivals: Vec::new(),
            sizes: Vec::new(),
            seqs: Vec::new(),
            features: Vec::new(),
            payload: Vec::new(),
            scratch: Vec::new(),
            generation: 0,
        }
    }

    /// Values per packet in the feature column.
    pub fn feature_width(&self) -> usize {
        self.feature_width
    }

    /// Number of packets currently stored.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// The current generation (bumped by every [`clear`](Self::clear)).
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Empties every column, keeping capacity, and invalidates all
    /// previously issued handles.
    pub fn clear(&mut self) {
        self.arrivals.clear();
        self.sizes.clear();
        self.seqs.clear();
        self.features.clear();
        self.payload.clear();
        self.generation = self.generation.wrapping_add(1);
    }

    /// Appends a packet, extracting its feature row with `extractor` when
    /// one is given (otherwise the feature column stays empty for this
    /// arena, which must then have `feature_width == 0`).
    pub fn push(&mut self, pkt: Packet, extractor: Option<&FeatureExtractor>) -> PacketHandle {
        debug_assert!(self.payload.len() < u32::MAX as usize, "arena overflow");
        let index = self.payload.len() as u32;
        self.arrivals.push(pkt.arrival);
        self.sizes.push(pkt.size);
        self.seqs.push(pkt.seq);
        if let Some(ex) = extractor {
            debug_assert_eq!(ex.width(), self.feature_width, "extractor width mismatch");
            ex.extract_into(&pkt, &mut self.scratch);
            self.features.extend_from_slice(&self.scratch);
        } else {
            debug_assert_eq!(self.feature_width, 0, "arena expects feature rows");
        }
        self.payload.push(pkt);
        PacketHandle {
            index,
            generation: self.generation,
        }
    }

    /// A handle to row `index` under the current generation.
    pub fn handle(&self, index: usize) -> PacketHandle {
        debug_assert!(index < self.len(), "handle out of bounds");
        PacketHandle {
            index: index as u32,
            generation: self.generation,
        }
    }

    /// Resolves a handle to its row index, or `None` when the handle is
    /// from an earlier generation (its row has been recycled).
    pub fn resolve(&self, h: PacketHandle) -> Option<usize> {
        (h.generation == self.generation && h.index() < self.len()).then(|| h.index())
    }

    /// The packet a live handle points at.
    pub fn get(&self, h: PacketHandle) -> Option<&Packet> {
        self.resolve(h).map(|i| &self.payload[i])
    }

    /// The feature row of a live handle (empty when the arena carries no
    /// feature column).
    pub fn features_of(&self, h: PacketHandle) -> Option<&[u32]> {
        self.resolve(h).map(|i| self.features_row(i))
    }

    /// The feature row at `index` (unchecked generation; empty when the
    /// arena carries no feature column).
    pub fn features_row(&self, index: usize) -> &[u32] {
        let w = self.feature_width;
        &self.features[index * w..(index + 1) * w]
    }

    /// The full packet payload at `index`.
    pub fn packet(&self, index: usize) -> &Packet {
        &self.payload[index]
    }

    /// The arrival-time column.
    pub fn arrivals(&self) -> &[SimTime] {
        &self.arrivals
    }

    /// The wire-size column.
    pub fn sizes(&self) -> &[u32] {
        &self.sizes
    }

    /// The sequence-number (packet id) column.
    pub fn seqs(&self) -> &[u64] {
        &self.seqs
    }

    /// The interleaved feature column (`feature_width` values per row).
    pub fn features(&self) -> &[u32] {
        &self.features
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn extractor() -> FeatureExtractor {
        FeatureExtractor::new(
            2,
            Arc::new(|p: &Packet, out: &mut Vec<u32>| {
                out.clear();
                out.push(p.size);
                out.push(p.size * 2);
            }),
        )
    }

    #[test]
    fn columns_stay_parallel() {
        let ex = extractor();
        let mut arena = PacketArena::new(2);
        for i in 0..5u32 {
            let pkt = Packet::new(SimTime::from_micros(u64::from(i))).with_size(100 + i);
            arena.push(pkt, Some(&ex));
        }
        assert_eq!(arena.len(), 5);
        assert_eq!(arena.sizes()[3], 103);
        assert_eq!(arena.arrivals()[3], SimTime::from_micros(3));
        assert_eq!(arena.features_row(3), &[103, 206]);
        assert_eq!(arena.packet(3).size, 103);
    }

    #[test]
    fn clear_invalidates_handles_and_keeps_capacity() {
        let ex = extractor();
        let mut arena = PacketArena::new(2);
        let h = arena.push(Packet::new(SimTime::ZERO).with_size(1), Some(&ex));
        assert!(arena.get(h).is_some());
        assert_eq!(arena.features_of(h).unwrap(), &[1, 2]);
        let cap = (arena.arrivals.capacity(), arena.features.capacity());
        arena.clear();
        assert!(arena.get(h).is_none(), "stale generation must not resolve");
        assert!(arena.is_empty());
        assert_eq!(
            (arena.arrivals.capacity(), arena.features.capacity()),
            cap,
            "clear must keep capacity"
        );
        let h2 = arena.push(Packet::new(SimTime::ZERO).with_size(9), Some(&ex));
        assert_ne!(h, h2, "same row, new generation");
        assert_eq!(arena.get(h2).unwrap().size, 9);
    }

    #[test]
    fn featureless_arena_has_empty_rows() {
        let mut arena = PacketArena::new(0);
        let h = arena.push(Packet::new(SimTime::ZERO), None);
        assert_eq!(arena.features_of(h).unwrap(), &[] as &[u32]);
    }
}
