//! Packets and ground-truth classes.
//!
//! The simulator carries full header information for every packet because
//! ACC-Turbo's clustering (paper §4) can use any header field as a feature,
//! and classic ACC's inference clusters the IP addresses of dropped packets.
//! Each packet additionally carries a ground-truth [`ClassId`] (benign or a
//! specific attack vector) which defenses never see — it exists only so the
//! evaluation can compute purity/recall and benign-drop percentages.

use crate::time::SimTime;
use std::fmt;
use std::net::Ipv4Addr;

/// IP protocol numbers used by the workloads.
pub mod proto {
    /// ICMP (protocol number 1).
    pub const ICMP: u8 = 1;
    /// TCP (protocol number 6).
    pub const TCP: u8 = 6;
    /// UDP (protocol number 17).
    pub const UDP: u8 = 17;
}

/// Ground-truth class of a packet: benign background traffic, or one of the
/// attack/aggregate classes defined by the experiment.
///
/// Class 0 is always benign. Experiments assign classes 1.. to attack
/// vectors or to the numbered aggregates of the ACC experiments (Fig. 2/3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(pub u16);

impl ClassId {
    /// The benign class.
    pub const BENIGN: ClassId = ClassId(0);

    /// True for the benign class.
    pub const fn is_benign(self) -> bool {
        self.0 == 0
    }

    /// True for any attack class.
    pub const fn is_attack(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_benign() {
            write!(f, "benign")
        } else {
            write!(f, "class{}", self.0)
        }
    }
}

/// A simulated packet with the header fields the paper's defenses inspect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Arrival time at the defended switch.
    pub arrival: SimTime,
    /// Wire size in bytes (used for serialization time and byte counters).
    pub size: u32,
    /// IPv4 source address.
    pub src: Ipv4Addr,
    /// IPv4 destination address.
    pub dst: Ipv4Addr,
    /// Transport source port (0 for non-TCP/UDP).
    pub sport: u16,
    /// Transport destination port (0 for non-TCP/UDP).
    pub dport: u16,
    /// IP protocol number.
    pub proto: u8,
    /// IP time-to-live.
    pub ttl: u8,
    /// IP total length field.
    pub ip_len: u16,
    /// IP identification field.
    pub ip_id: u16,
    /// IP fragment offset field (13 bits used).
    pub frag_offset: u16,
    /// TCP flags byte (0 for non-TCP).
    pub tcp_flags: u8,
    /// Ground-truth class (never visible to defenses).
    pub class: ClassId,
    /// Monotonic sequence number, unique per simulation, for stable
    /// tie-breaking in rank-ordered queues.
    pub seq: u64,
}

impl Packet {
    /// A builder-style constructor with neutral defaults: a 1000-byte benign
    /// UDP packet at t=0 from 10.0.0.1:1000 to 10.0.1.1:80.
    pub fn new(arrival: SimTime) -> Self {
        Packet {
            arrival,
            size: 1000,
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(10, 0, 1, 1),
            sport: 1000,
            dport: 80,
            proto: proto::UDP,
            ttl: 64,
            ip_len: 1000,
            ip_id: 0,
            frag_offset: 0,
            tcp_flags: 0,
            class: ClassId::BENIGN,
            seq: 0,
        }
    }

    /// Sets the wire size and keeps `ip_len` consistent with it.
    pub fn with_size(mut self, size: u32) -> Self {
        self.size = size;
        self.ip_len = size.min(u16::MAX as u32) as u16;
        self
    }

    /// Sets the source address.
    pub fn with_src(mut self, src: Ipv4Addr) -> Self {
        self.src = src;
        self
    }

    /// Sets the destination address.
    pub fn with_dst(mut self, dst: Ipv4Addr) -> Self {
        self.dst = dst;
        self
    }

    /// Sets the transport ports.
    pub fn with_ports(mut self, sport: u16, dport: u16) -> Self {
        self.sport = sport;
        self.dport = dport;
        self
    }

    /// Sets the IP protocol.
    pub fn with_proto(mut self, proto: u8) -> Self {
        self.proto = proto;
        self
    }

    /// Sets the TTL.
    pub fn with_ttl(mut self, ttl: u8) -> Self {
        self.ttl = ttl;
        self
    }

    /// Sets the ground-truth class.
    pub fn with_class(mut self, class: ClassId) -> Self {
        self.class = class;
        self
    }

    /// The 5-tuple (src, dst, sport, dport, proto) identifying the flow.
    pub fn five_tuple(&self) -> FiveTuple {
        FiveTuple {
            src: self.src,
            dst: self.dst,
            sport: self.sport,
            dport: self.dport,
            proto: self.proto,
        }
    }
}

/// The classic transport 5-tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FiveTuple {
    /// IPv4 source address.
    pub src: Ipv4Addr,
    /// IPv4 destination address.
    pub dst: Ipv4Addr,
    /// Transport source port.
    pub sport: u16,
    /// Transport destination port.
    pub dport: u16,
    /// IP protocol number.
    pub proto: u8,
}

/// Why a queue discipline dropped a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// The queue was full on arrival (tail drop).
    TailDrop,
    /// RED dropped the packet probabilistically (early drop).
    RedEarly,
    /// RED dropped the packet because the average queue exceeded `max_th`.
    RedForced,
    /// A rank-ordered queue evicted the worst-ranked resident packet (or
    /// refused the arriving packet) under overflow.
    RankEviction,
    /// A rate limiter / policer dropped the packet.
    Policer,
    /// A mitigation filter (e.g. a Jaqen drop rule) dropped the packet.
    Filter,
}

impl DropReason {
    /// Stable snake_case tag used in trace output.
    pub fn name(self) -> &'static str {
        match self {
            DropReason::TailDrop => "tail_drop",
            DropReason::RedEarly => "red_early",
            DropReason::RedForced => "red_forced",
            DropReason::RankEviction => "rank_eviction",
            DropReason::Policer => "policer",
            DropReason::Filter => "filter",
        }
    }
}

/// A dropped packet together with the reason it was dropped.
#[derive(Debug, Clone)]
pub struct Dropped {
    /// The dropped packet.
    pub packet: Packet,
    /// Why it was dropped.
    pub reason: DropReason,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_predicates() {
        assert!(ClassId::BENIGN.is_benign());
        assert!(!ClassId::BENIGN.is_attack());
        assert!(ClassId(3).is_attack());
        assert_eq!(ClassId::BENIGN.to_string(), "benign");
        assert_eq!(ClassId(2).to_string(), "class2");
    }

    #[test]
    fn builder_sets_fields() {
        let p = Packet::new(SimTime::from_secs(1))
            .with_size(500)
            .with_src(Ipv4Addr::new(1, 2, 3, 4))
            .with_dst(Ipv4Addr::new(5, 6, 7, 8))
            .with_ports(53, 4444)
            .with_proto(proto::TCP)
            .with_ttl(32)
            .with_class(ClassId(7));
        assert_eq!(p.size, 500);
        assert_eq!(p.ip_len, 500);
        assert_eq!(p.src, Ipv4Addr::new(1, 2, 3, 4));
        assert_eq!(p.sport, 53);
        assert_eq!(p.proto, proto::TCP);
        assert_eq!(p.ttl, 32);
        assert_eq!(p.class, ClassId(7));
    }

    #[test]
    fn five_tuple_extraction() {
        let p = Packet::new(SimTime::ZERO).with_ports(1, 2);
        let ft = p.five_tuple();
        assert_eq!(ft.sport, 1);
        assert_eq!(ft.dport, 2);
        assert_eq!(ft.src, p.src);
    }

    #[test]
    fn oversized_packet_clamps_ip_len() {
        let p = Packet::new(SimTime::ZERO).with_size(100_000);
        assert_eq!(p.size, 100_000);
        assert_eq!(p.ip_len, u16::MAX);
    }
}
