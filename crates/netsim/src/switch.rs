//! The switch abstraction the engine drives.
//!
//! A [`Switch`] is the defended device of the paper's system model (§3.1):
//! it sees every arriving packet, decides where (or whether) to queue it,
//! and hands packets to the output link on demand. Defenses differ only in
//! how they implement `ingress` (classification, policing, queue mapping)
//! and `control_tick` (the control-plane loop); the engine treats them all
//! identically.

use crate::packet::{DropReason, Dropped, Packet};
use crate::queue::{FifoQueue, QueueDiscipline};
use crate::time::{SimDuration, SimTime};
use std::sync::Arc;

/// The boxed extraction closure a [`FeatureExtractor`] wraps: fills the
/// output vector with one packet's feature values.
pub type ExtractFn = Arc<dyn Fn(&Packet, &mut Vec<u32>) + Send + Sync>;

/// A pure per-packet feature extractor a switch can expose (see
/// [`Switch::feature_extractor`]) so the sharded engine can precompute the
/// classification features of a whole arrival window into the packet
/// arena's feature column — per shard, off the serial event loop.
///
/// The closure must be a pure function of the packet: calling it twice on
/// the same packet yields the same values, and extraction order carries no
/// state. That is what makes precomputation byte-identical to extracting
/// at ingress time.
#[derive(Clone)]
pub struct FeatureExtractor {
    width: usize,
    extract: ExtractFn,
}

impl FeatureExtractor {
    /// Wraps a pure extractor producing exactly `width` values per packet.
    /// The closure must clear `out` and fill it with `width` values (the
    /// convention of the clustering crate's `FeatureSet::extract_into`).
    pub fn new(width: usize, extract: ExtractFn) -> Self {
        FeatureExtractor { width, extract }
    }

    /// Number of feature values produced per packet.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Clears `out` and fills it with the packet's `width` feature values.
    pub fn extract_into(&self, pkt: &Packet, out: &mut Vec<u32>) {
        (self.extract)(pkt, out);
        debug_assert_eq!(out.len(), self.width, "extractor arity mismatch");
    }
}

impl std::fmt::Debug for FeatureExtractor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FeatureExtractor")
            .field("width", &self.width)
            .finish_non_exhaustive()
    }
}

/// A switch with one output port.
pub trait Switch {
    /// Processes an arriving packet: classify, police, and enqueue. Any
    /// resulting drops are pushed into `drops`.
    fn ingress(&mut self, pkt: Packet, now: SimTime, drops: &mut Vec<Dropped>);

    /// [`ingress`](Self::ingress) with the classification features already
    /// extracted (by this switch's own [`feature_extractor`]). Must be
    /// observably identical to plain `ingress`; the default simply ignores
    /// the precomputed values and delegates, so switches without a
    /// feature-based fast path are correct for free.
    ///
    /// [`feature_extractor`]: Self::feature_extractor
    fn ingress_featured(
        &mut self,
        pkt: Packet,
        _features: &[u32],
        now: SimTime,
        drops: &mut Vec<Dropped>,
    ) {
        self.ingress(pkt, now, drops);
    }

    /// The pure feature extractor of this switch's classification stage,
    /// if it has one. When `Some`, the sharded engine precomputes feature
    /// columns per shard and delivers packets via
    /// [`ingress_featured`](Self::ingress_featured); when `None` (the
    /// default) it falls back to plain [`ingress`](Self::ingress).
    fn feature_extractor(&self) -> Option<FeatureExtractor> {
        None
    }

    /// Hands the next packet to the output link, if any.
    fn dequeue(&mut self, now: SimTime) -> Option<Packet>;

    /// Number of packets currently buffered.
    fn backlog_pkts(&self) -> usize;

    /// Invoked by the engine at every control-plane period (when one is
    /// configured). Defenses run their slow-path logic here: classic ACC's
    /// agent, ACC-Turbo's cluster polling and priority updates, Jaqen's
    /// sketch reads.
    fn control_tick(&mut self, _now: SimTime) {}

    /// Invoked instead of [`control_tick`](Self::control_tick) when a
    /// fault schedule suppresses the tick (see `fault::FaultInjector`).
    /// Defaults to doing nothing: the previously deployed control state
    /// simply stays in force. Defenses with a graceful-degradation policy
    /// (DESIGN.md §9) use this hook to age their control view and decide
    /// on fallbacks.
    fn control_missed(&mut self, _now: SimTime) {}

    /// The aggregate rate limits this switch wants pushed to its
    /// upstreams, appended to `out`. Only the topology engine calls this
    /// (at each pushback refresh, on the bottleneck node); the default is
    /// empty, so defenses without a pushback story cost nothing. The
    /// out-parameter keeps the single-switch fast path alloc-free.
    fn pushback_limits(&mut self, _now: SimTime, _out: &mut Vec<crate::topology::AggLimit>) {}
}

/// A switch that is just a single queue discipline — the FIFO and plain-RED
/// baselines.
#[derive(Debug, Clone)]
pub struct SingleQueueSwitch<Q: QueueDiscipline> {
    queue: Q,
}

impl<Q: QueueDiscipline> SingleQueueSwitch<Q> {
    /// Wraps a queue discipline.
    pub fn new(queue: Q) -> Self {
        SingleQueueSwitch { queue }
    }

    /// Access to the wrapped queue (e.g. to read RED's average).
    pub fn queue(&self) -> &Q {
        &self.queue
    }
}

impl<Q: QueueDiscipline> Switch for SingleQueueSwitch<Q> {
    fn ingress(&mut self, pkt: Packet, now: SimTime, drops: &mut Vec<Dropped>) {
        self.queue.enqueue(pkt, now, drops);
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
        self.queue.dequeue(now)
    }

    fn backlog_pkts(&self) -> usize {
        self.queue.len_pkts()
    }
}

/// A FIFO switch that models a P4 program swap: all traffic is lost
/// during the downtime window (the paper measured ≈11.5 s on a Tofino,
/// §7.2.2 — what Jaqen pays when the needed mitigation module is not
/// loaded).
pub struct ProgramSwapSwitch {
    queue: FifoQueue,
    downtime_start: SimTime,
    downtime_end: SimTime,
}

impl ProgramSwapSwitch {
    /// Creates the switch with the given downtime window.
    pub fn new(downtime_start: SimTime, downtime: SimDuration) -> Self {
        ProgramSwapSwitch {
            queue: FifoQueue::new(512 * 1024),
            downtime_start,
            downtime_end: downtime_start + downtime,
        }
    }
}

impl Switch for ProgramSwapSwitch {
    fn ingress(&mut self, pkt: Packet, now: SimTime, drops: &mut Vec<Dropped>) {
        if now >= self.downtime_start && now < self.downtime_end {
            drops.push(Dropped {
                packet: pkt,
                reason: DropReason::Filter,
            });
            return;
        }
        self.queue.enqueue(pkt, now, drops);
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
        self.queue.dequeue(now)
    }

    fn backlog_pkts(&self) -> usize {
        self.queue.len_pkts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_queue_switch_passes_through() {
        let mut sw = SingleQueueSwitch::new(FifoQueue::new(10_000));
        let mut drops = Vec::new();
        sw.ingress(Packet::new(SimTime::ZERO), SimTime::ZERO, &mut drops);
        assert_eq!(sw.backlog_pkts(), 1);
        assert!(sw.dequeue(SimTime::ZERO).is_some());
        assert_eq!(sw.backlog_pkts(), 0);
        assert!(drops.is_empty());
    }
}
