//! # accturbo-netsim
//!
//! Deterministic packet-level network simulator — the substrate on which
//! the ACC-Turbo reproduction runs (standing in for the NetBench simulator
//! and the Tofino testbed of the paper; see DESIGN.md §1).
//!
//! The core model is a single output-queued switch in front of a
//! bottleneck link, matching the paper's system model (§3.1): the defense
//! runs on the switch that gives access to the critical link, whose input
//! capacity exceeds the output bandwidth. The [`topology`] layer composes
//! that same switch abstraction into small trees (line, star, fat-tree,
//! ISP edge) with per-link serialization + propagation delay and
//! hop-by-hop pushback, without touching the single-switch fast path.
//!
//! Building blocks:
//!
//! * [`time`] / [`units`] — integer-nanosecond simulated time, bandwidths.
//! * [`packet`] — packets with full header state plus ground-truth labels.
//! * [`queue`] — FIFO, RED, strict-priority banks, and rank-ordered PIFO.
//! * [`rate`] — EWMA rate estimation and token-bucket policing.
//! * [`source`] — workload streams and the k-way time-ordered merge.
//! * [`switch`] / [`engine`] — the defended-switch abstraction and the
//!   event loop that drives arrivals, transmissions and control ticks.
//!
//! Everything is synchronous, allocation-conscious and seeded: running the
//! same experiment twice produces bit-identical results.

#![deny(missing_docs)]

pub mod arena;
pub mod engine;
pub mod fault;
pub mod latency;
pub mod packet;
pub mod queue;
pub mod rate;
pub mod shard;
pub mod source;
pub mod stats;
pub mod switch;
pub mod time;
pub mod topology;
pub mod trace;
pub mod units;

pub use arena::{PacketArena, PacketHandle};
pub use engine::{run, run_instrumented, run_streamed, run_with_faults, EngineConfig, RunResult};
pub use fault::{
    ControlAction, FaultConfig, FaultInjector, FaultRecord, FaultSchedule, FaultStats,
    FaultedSource, NoopFaultInjector, PktFate,
};
pub use latency::DelayHistogram;
pub use packet::{ClassId, DropReason, Dropped, FiveTuple, Packet};
pub use queue::{FifoQueue, PifoQueue, PriorityBank, QueueDiscipline, RedConfig, RedQueue};
pub use rate::{EwmaRate, TokenBucket};
pub use shard::{flow_shard, fnv1a64, run_sharded, source_shard, ShardedEngine, ShardedSource};
pub use source::{IterSource, MergedSource, PacketSource, VecSource};
pub use stats::{Counts, StatsCollector};
pub use switch::{FeatureExtractor, ProgramSwapSwitch, SingleQueueSwitch, Switch};
pub use time::{SimDuration, SimTime};
pub use topology::{
    run_topology, run_topology_traced, AggLimit, LinkSpec, PushbackPlan, Topology, TopologyConfig,
    TopologyRunResult,
};
pub use trace::{pcap_source, read_csv, read_pcap, write_csv, write_pcap, TraceStats};
pub use units::Bandwidth;
