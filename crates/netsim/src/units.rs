//! Bandwidth and rate units.

use crate::time::SimDuration;
use std::fmt;

/// Link or flow bandwidth, in bits per second.
///
/// The paper's experiments run at 10–100 Gbps; simulation-based experiments
/// in this reproduction run at a documented 1/1000 scale (see DESIGN.md §4),
/// which this type represents equally well.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bandwidth(u64);

impl Bandwidth {
    /// Zero bandwidth.
    pub const ZERO: Bandwidth = Bandwidth(0);

    /// Builds a bandwidth from bits per second.
    pub const fn from_bps(bps: u64) -> Self {
        Bandwidth(bps)
    }

    /// Builds a bandwidth from kilobits per second (10^3 bps).
    pub const fn from_kbps(kbps: u64) -> Self {
        Bandwidth(kbps * 1_000)
    }

    /// Builds a bandwidth from megabits per second (10^6 bps).
    pub const fn from_mbps(mbps: u64) -> Self {
        Bandwidth(mbps * 1_000_000)
    }

    /// Builds a bandwidth from gigabits per second (10^9 bps).
    pub const fn from_gbps(gbps: u64) -> Self {
        Bandwidth(gbps * 1_000_000_000)
    }

    /// Builds a bandwidth from fractional megabits per second.
    pub fn from_mbps_f64(mbps: f64) -> Self {
        assert!(mbps.is_finite() && mbps >= 0.0, "invalid bandwidth: {mbps}");
        Bandwidth((mbps * 1e6).round() as u64)
    }

    /// Bits per second.
    pub const fn as_bps(self) -> u64 {
        self.0
    }

    /// Megabits per second.
    pub fn as_mbps_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time to serialize `bytes` onto a link of this bandwidth.
    ///
    /// Panics on zero bandwidth: a zero-rate link can never transmit.
    pub fn tx_time(self, bytes: u32) -> SimDuration {
        assert!(self.0 > 0, "cannot transmit on a zero-bandwidth link");
        // bits * 1e9 / bps, in u128 to avoid overflow for jumbo byte counts.
        let ns = (bytes as u128 * 8 * 1_000_000_000) / self.0 as u128;
        SimDuration::from_nanos(ns as u64)
    }

    /// Scales this bandwidth by a ratio (used for rate-scaled experiments).
    pub fn scale(self, ratio: f64) -> Self {
        assert!(ratio.is_finite() && ratio >= 0.0, "invalid scale: {ratio}");
        Bandwidth((self.0 as f64 * ratio).round() as u64)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}Gbps", self.0 as f64 / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}Mbps", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}bps", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        assert_eq!(Bandwidth::from_gbps(1).as_bps(), 1_000_000_000);
        assert_eq!(Bandwidth::from_mbps(10), Bandwidth::from_kbps(10_000));
        assert!((Bandwidth::from_mbps_f64(1.5).as_mbps_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn tx_time_of_1500b_at_1gbps_is_12us() {
        let t = Bandwidth::from_gbps(1).tx_time(1500);
        assert_eq!(t.as_nanos(), 12_000);
    }

    #[test]
    fn tx_time_scales_inversely_with_rate() {
        let slow = Bandwidth::from_mbps(10).tx_time(1000);
        let fast = Bandwidth::from_mbps(100).tx_time(1000);
        assert_eq!(slow.as_nanos(), fast.as_nanos() * 10);
    }

    #[test]
    #[should_panic(expected = "zero-bandwidth")]
    fn zero_bandwidth_tx_panics() {
        let _ = Bandwidth::ZERO.tx_time(100);
    }

    #[test]
    fn scaling() {
        assert_eq!(
            Bandwidth::from_gbps(10).scale(0.001),
            Bandwidth::from_mbps(10)
        );
    }
}
