//! Rate estimation and policing primitives.
//!
//! Classic ACC estimates each aggregate's arrival rate with an exponential
//! moving average over fixed intervals (`k = 0.1 s` in the paper's Table 4)
//! and polices rate-limited aggregates with a token bucket. ACC-Turbo's
//! control plane uses the same estimator on per-cluster byte counters.

use crate::time::{SimDuration, SimTime};
use crate::units::Bandwidth;

/// Exponentially weighted moving average of a byte rate, updated over
/// fixed-length measurement intervals.
#[derive(Debug, Clone)]
pub struct EwmaRate {
    interval: SimDuration,
    alpha: f64,
    window_start: SimTime,
    window_bytes: u64,
    rate_bps: f64,
    initialized: bool,
}

impl EwmaRate {
    /// Creates an estimator with measurement interval `interval` and
    /// smoothing factor `alpha` in (0, 1] (the weight of the newest sample).
    pub fn new(interval: SimDuration, alpha: f64) -> Self {
        assert!(!interval.is_zero(), "EWMA interval must be positive");
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        EwmaRate {
            interval,
            alpha,
            window_start: SimTime::ZERO,
            window_bytes: 0,
            rate_bps: 0.0,
            initialized: false,
        }
    }

    /// ACC's configuration: 0.1 s intervals, newest sample weighted 0.5.
    pub fn acc_default() -> Self {
        EwmaRate::new(SimDuration::from_millis(100), 0.5)
    }

    /// Records `bytes` arriving at `now`, closing any elapsed measurement
    /// windows first.
    pub fn record(&mut self, bytes: u64, now: SimTime) {
        self.roll_forward(now);
        self.window_bytes += bytes;
    }

    /// The current rate estimate at `now` (elapsed empty windows pull the
    /// estimate toward zero).
    pub fn rate(&mut self, now: SimTime) -> Bandwidth {
        self.roll_forward(now);
        Bandwidth::from_bps(self.rate_bps.max(0.0) as u64)
    }

    /// Closes every measurement window that ended before `now`.
    fn roll_forward(&mut self, now: SimTime) {
        while now >= self.window_start + self.interval {
            let inst_bps = self.window_bytes as f64 * 8.0 / self.interval.as_secs_f64();
            if self.initialized {
                self.rate_bps += self.alpha * (inst_bps - self.rate_bps);
            } else {
                self.rate_bps = inst_bps;
                self.initialized = true;
            }
            self.window_bytes = 0;
            self.window_start += self.interval;
        }
    }
}

/// A token-bucket policer: packets conforming to `rate` (with `burst_bytes`
/// of slack) pass; the rest are marked nonconforming (ACC drops them before
/// the RED queue).
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate: Bandwidth,
    burst_bytes: f64,
    tokens: f64,
    last: SimTime,
}

impl TokenBucket {
    /// Creates a bucket replenished at `rate` with capacity `burst_bytes`,
    /// initially full.
    pub fn new(rate: Bandwidth, burst_bytes: u64) -> Self {
        assert!(burst_bytes > 0, "token bucket burst must be positive");
        TokenBucket {
            rate,
            burst_bytes: burst_bytes as f64,
            tokens: burst_bytes as f64,
            last: SimTime::ZERO,
        }
    }

    /// The configured rate.
    pub fn rate(&self) -> Bandwidth {
        self.rate
    }

    /// Re-targets the policing rate (ACC revisits its limits periodically).
    pub fn set_rate(&mut self, rate: Bandwidth) {
        self.rate = rate;
    }

    /// Returns true when a packet of `bytes` conforms at `now` (and spends
    /// the tokens); false when it must be dropped.
    pub fn conforms(&mut self, bytes: u32, now: SimTime) -> bool {
        let elapsed = now.saturating_since(self.last).as_secs_f64();
        self.last = self.last.max(now);
        self.tokens =
            (self.tokens + elapsed * self.rate.as_bps() as f64 / 8.0).min(self.burst_bytes);
        if self.tokens >= bytes as f64 {
            self.tokens -= bytes as f64;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_converges_to_constant_rate() {
        let mut est = EwmaRate::new(SimDuration::from_millis(100), 0.5);
        // 1000 bytes per 100 ms = 80 kbps.
        for i in 0..100u64 {
            est.record(1000, SimTime::from_millis(i * 100 + 50));
        }
        let r = est.rate(SimTime::from_secs(10)).as_bps();
        assert!((r as f64 - 80_000.0).abs() < 1_000.0, "rate {r} != ~80kbps");
    }

    #[test]
    fn ewma_decays_when_traffic_stops() {
        let mut est = EwmaRate::new(SimDuration::from_millis(100), 0.5);
        for i in 0..20u64 {
            est.record(10_000, SimTime::from_millis(i * 100 + 50));
        }
        let busy = est.rate(SimTime::from_secs(2)).as_bps();
        let idle = est.rate(SimTime::from_secs(4)).as_bps();
        assert!(idle < busy / 100, "rate must decay over idle windows");
    }

    #[test]
    fn ewma_first_window_initializes_directly() {
        let mut est = EwmaRate::new(SimDuration::from_millis(100), 0.1);
        est.record(1_250, SimTime::from_millis(10)); // 100 kbps window
        let r = est.rate(SimTime::from_millis(100)).as_bps();
        assert_eq!(r, 100_000);
    }

    #[test]
    fn token_bucket_enforces_long_term_rate() {
        // 80 kbps = 10 kB/s; over 1 s only ~10 kB + burst should conform.
        let mut tb = TokenBucket::new(Bandwidth::from_kbps(80), 2_000);
        let mut passed = 0u64;
        for i in 0..1_000u64 {
            // 100 B every 1 ms = 100 kB/s offered, 10x the rate.
            if tb.conforms(100, SimTime::from_millis(i)) {
                passed += 100;
            }
        }
        assert!(passed <= 12_100, "passed {passed} bytes, expected <= ~12kB");
        assert!(passed >= 10_000, "passed {passed} bytes, expected >= 10kB");
    }

    #[test]
    fn token_bucket_allows_initial_burst() {
        let mut tb = TokenBucket::new(Bandwidth::from_kbps(8), 5_000);
        assert!(tb.conforms(5_000, SimTime::ZERO));
        assert!(!tb.conforms(100, SimTime::ZERO));
    }

    #[test]
    fn token_bucket_rate_update_takes_effect() {
        let mut tb = TokenBucket::new(Bandwidth::from_bps(0), 1_000);
        assert!(tb.conforms(1_000, SimTime::ZERO)); // initial burst
        assert!(!tb.conforms(1_000, SimTime::from_secs(10))); // zero refill
        tb.set_rate(Bandwidth::from_kbps(8)); // 1 kB/s
        assert!(tb.conforms(1_000, SimTime::from_secs(12)));
    }
}
