//! Rank-ordered (PIFO) queue.
//!
//! A Push-In First-Out queue dequeues packets in ascending rank order
//! (lower rank = higher priority). Under overflow it sheds the *worst*
//! ranked packet — either the arriving one or a resident — which is exactly
//! the "only drops under severe congestion, starting with the most likely
//! malicious" behaviour the paper relies on (§3.2). The "PIFO Ideal"
//! baseline of §8.2 is this queue ranked by ground truth.

use super::QueueDiscipline;
use crate::packet::{DropReason, Dropped, Packet};
use crate::time::SimTime;
use std::collections::BTreeMap;

/// A byte-bounded PIFO. Ranks are assigned by the caller via
/// [`PifoQueue::enqueue_ranked`]; the plain [`QueueDiscipline::enqueue`]
/// uses rank 0.
#[derive(Debug, Clone)]
pub struct PifoQueue {
    /// Keyed by (rank, arrival sequence) so equal ranks stay FIFO.
    entries: BTreeMap<(u64, u64), Packet>,
    cap_bytes: u64,
    bytes: u64,
}

impl PifoQueue {
    /// Creates a PIFO with the given byte capacity.
    pub fn new(cap_bytes: u64) -> Self {
        assert!(cap_bytes > 0, "PIFO capacity must be positive");
        PifoQueue {
            entries: BTreeMap::new(),
            cap_bytes,
            bytes: 0,
        }
    }

    /// Offers `pkt` with `rank`. On overflow, evicts worst-ranked packets
    /// (which may be the arriving packet itself) until the buffer fits.
    pub fn enqueue_ranked(&mut self, pkt: Packet, rank: u64, drops: &mut Vec<Dropped>) {
        let mut incoming = Some((rank, pkt));
        while let Some((rank, pkt)) = incoming.take() {
            if self.bytes + pkt.size as u64 <= self.cap_bytes {
                self.bytes += pkt.size as u64;
                self.entries.insert((rank, pkt.seq), pkt);
                return;
            }
            // Overflow: compare the arriving packet against the worst
            // resident. Whichever has the worse (higher) rank is shed.
            match self.entries.last_key_value() {
                Some((&worst_key, _)) if worst_key.0 > rank => {
                    let evicted = self.entries.remove(&worst_key).expect("key just observed");
                    self.bytes -= evicted.size as u64;
                    drops.push(Dropped {
                        packet: evicted,
                        reason: DropReason::RankEviction,
                    });
                    incoming = Some((rank, pkt)); // retry the insert
                }
                _ => {
                    drops.push(Dropped {
                        packet: pkt,
                        reason: DropReason::RankEviction,
                    });
                    return;
                }
            }
        }
    }

    /// The rank of the next packet to be dequeued.
    pub fn peek_rank(&self) -> Option<u64> {
        self.entries.keys().next().map(|&(rank, _)| rank)
    }
}

impl QueueDiscipline for PifoQueue {
    fn enqueue(&mut self, pkt: Packet, _now: SimTime, drops: &mut Vec<Dropped>) {
        self.enqueue_ranked(pkt, 0, drops);
    }

    fn dequeue(&mut self, _now: SimTime) -> Option<Packet> {
        let (&key, _) = self.entries.first_key_value()?;
        let pkt = self.entries.remove(&key).expect("key just observed");
        self.bytes -= pkt.size as u64;
        Some(pkt)
    }

    fn len_bytes(&self) -> u64 {
        self.bytes
    }

    fn len_pkts(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(seq: u64, size: u32) -> Packet {
        let mut p = Packet::new(SimTime::ZERO).with_size(size);
        p.seq = seq;
        p
    }

    #[test]
    fn dequeues_in_rank_order() {
        let mut q = PifoQueue::new(10_000);
        let mut drops = Vec::new();
        q.enqueue_ranked(pkt(0, 100), 5, &mut drops);
        q.enqueue_ranked(pkt(1, 100), 1, &mut drops);
        q.enqueue_ranked(pkt(2, 100), 3, &mut drops);
        let order: Vec<u64> = std::iter::from_fn(|| q.dequeue(SimTime::ZERO))
            .map(|p| p.seq)
            .collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn equal_ranks_stay_fifo() {
        let mut q = PifoQueue::new(10_000);
        let mut drops = Vec::new();
        for i in 0..4 {
            q.enqueue_ranked(pkt(i, 100), 7, &mut drops);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.dequeue(SimTime::ZERO))
            .map(|p| p.seq)
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn overflow_evicts_worst_resident() {
        let mut q = PifoQueue::new(200);
        let mut drops = Vec::new();
        q.enqueue_ranked(pkt(0, 100), 9, &mut drops); // worst
        q.enqueue_ranked(pkt(1, 100), 2, &mut drops);
        q.enqueue_ranked(pkt(2, 100), 1, &mut drops); // overflow: evict seq 0
        assert_eq!(drops.len(), 1);
        assert_eq!(drops[0].packet.seq, 0);
        assert_eq!(drops[0].reason, DropReason::RankEviction);
        assert_eq!(q.len_pkts(), 2);
    }

    #[test]
    fn overflow_rejects_arriving_when_it_is_worst() {
        let mut q = PifoQueue::new(200);
        let mut drops = Vec::new();
        q.enqueue_ranked(pkt(0, 100), 1, &mut drops);
        q.enqueue_ranked(pkt(1, 100), 2, &mut drops);
        q.enqueue_ranked(pkt(2, 100), 9, &mut drops); // arriving is worst
        assert_eq!(drops.len(), 1);
        assert_eq!(drops[0].packet.seq, 2);
        assert_eq!(q.len_pkts(), 2);
    }

    #[test]
    fn overflow_can_evict_multiple_small_packets() {
        let mut q = PifoQueue::new(300);
        let mut drops = Vec::new();
        q.enqueue_ranked(pkt(0, 100), 9, &mut drops);
        q.enqueue_ranked(pkt(1, 100), 8, &mut drops);
        q.enqueue_ranked(pkt(2, 100), 7, &mut drops);
        // 300-byte arrival at best rank must push out all three residents.
        q.enqueue_ranked(pkt(3, 300), 0, &mut drops);
        assert_eq!(drops.len(), 3);
        assert_eq!(q.len_pkts(), 1);
        assert_eq!(q.peek_rank(), Some(0));
    }

    #[test]
    fn byte_accounting_is_exact() {
        let mut q = PifoQueue::new(1_000);
        let mut drops = Vec::new();
        q.enqueue_ranked(pkt(0, 400), 1, &mut drops);
        q.enqueue_ranked(pkt(1, 500), 2, &mut drops);
        assert_eq!(q.len_bytes(), 900);
        q.dequeue(SimTime::ZERO);
        assert_eq!(q.len_bytes(), 500);
    }
}
