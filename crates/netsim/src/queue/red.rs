//! Random Early Detection (RED) queue.
//!
//! Classic RED (Floyd & Jacobson 1993) as used by ACC (paper §2.1): the
//! average queue size is tracked with an exponentially weighted moving
//! average; packets are dropped probabilistically between `min_th` and
//! `max_th`, and deterministically above `max_th`. Every drop is reported
//! through the `drops` buffer so the ACC agent can record the dropped
//! headers for aggregate inference.

use super::{FifoQueue, QueueDiscipline};
use crate::packet::{DropReason, Dropped, Packet};
use crate::time::{SimDuration, SimTime};
use accturbo_prng::{Rng, SeedableRng, StdRng};

/// RED parameters.
#[derive(Debug, Clone)]
pub struct RedConfig {
    /// Queue-averaging weight `w_q` (classic value: 0.002).
    pub weight: f64,
    /// Minimum threshold, in packets.
    pub min_th: f64,
    /// Maximum threshold, in packets.
    pub max_th: f64,
    /// Maximum early-drop probability `max_p`.
    pub max_p: f64,
    /// Physical queue capacity, in bytes.
    pub cap_bytes: u64,
    /// Typical packet transmission time, used to age the average while the
    /// queue sits idle.
    pub typical_tx: SimDuration,
    /// RNG seed for the early-drop coin flips (deterministic per run).
    pub seed: u64,
}

impl Default for RedConfig {
    fn default() -> Self {
        RedConfig {
            weight: 0.002,
            min_th: 50.0,
            max_th: 150.0,
            max_p: 0.1,
            cap_bytes: 512 * 1024,
            typical_tx: SimDuration::from_micros(100),
            seed: 0xACC0,
        }
    }
}

/// A RED-managed FIFO queue.
#[derive(Debug, Clone)]
pub struct RedQueue {
    cfg: RedConfig,
    inner: FifoQueue,
    /// EWMA of the queue length in packets.
    avg: f64,
    /// Packets accepted since the last drop (the `count` of classic RED).
    count: i64,
    /// When the queue last went idle, if it is currently empty.
    idle_since: Option<SimTime>,
    rng: StdRng,
}

impl RedQueue {
    /// Creates a RED queue from a configuration.
    ///
    /// Panics on nonsensical thresholds (`min_th >= max_th`), weights, or
    /// probabilities.
    pub fn new(cfg: RedConfig) -> Self {
        assert!(cfg.min_th < cfg.max_th, "RED requires min_th < max_th");
        assert!(
            cfg.weight > 0.0 && cfg.weight <= 1.0,
            "RED weight must be in (0, 1]"
        );
        assert!(
            cfg.max_p > 0.0 && cfg.max_p <= 1.0,
            "RED max_p must be in (0, 1]"
        );
        let rng = StdRng::seed_from_u64(cfg.seed);
        RedQueue {
            inner: FifoQueue::new(cfg.cap_bytes),
            avg: 0.0,
            count: -1,
            idle_since: Some(SimTime::ZERO),
            cfg,
            rng,
        }
    }

    /// The current EWMA of the queue length, in packets.
    pub fn avg_queue(&self) -> f64 {
        self.avg
    }

    /// Updates the queue-size average on a packet arrival at `now`.
    fn update_avg(&mut self, now: SimTime) {
        if let Some(idle_since) = self.idle_since {
            // Queue has been empty: decay the average as if `m` small
            // packets had been transmitted during the idle period.
            let idle = now.saturating_since(idle_since);
            let m = idle.as_nanos() as f64 / self.cfg.typical_tx.as_nanos().max(1) as f64;
            self.avg *= (1.0 - self.cfg.weight).powf(m);
            self.idle_since = None;
        } else {
            let q = self.inner.len_pkts() as f64;
            self.avg += self.cfg.weight * (q - self.avg);
        }
    }

    /// Classic RED drop decision for the current average.
    fn early_drop(&mut self) -> bool {
        let pb =
            self.cfg.max_p * (self.avg - self.cfg.min_th) / (self.cfg.max_th - self.cfg.min_th);
        let pb = pb.clamp(0.0, 1.0);
        let denom = 1.0 - self.count as f64 * pb;
        let pa = if denom <= 0.0 {
            1.0
        } else {
            (pb / denom).clamp(0.0, 1.0)
        };
        self.rng.gen::<f64>() < pa
    }
}

impl QueueDiscipline for RedQueue {
    fn enqueue(&mut self, pkt: Packet, now: SimTime, drops: &mut Vec<Dropped>) {
        self.update_avg(now);

        if self.avg >= self.cfg.max_th {
            self.count = 0;
            drops.push(Dropped {
                packet: pkt,
                reason: DropReason::RedForced,
            });
            return;
        }
        if self.avg >= self.cfg.min_th {
            self.count += 1;
            if self.early_drop() {
                self.count = 0;
                drops.push(Dropped {
                    packet: pkt,
                    reason: DropReason::RedEarly,
                });
                return;
            }
        } else {
            self.count = -1;
        }

        // Physical tail drop still applies regardless of the average.
        let before = drops.len();
        self.inner.enqueue(pkt, now, drops);
        if drops.len() > before {
            self.count = 0;
        }
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
        let pkt = self.inner.dequeue(now);
        if self.inner.is_empty() && pkt.is_some() {
            self.idle_since = Some(now);
        }
        pkt
    }

    fn len_bytes(&self) -> u64 {
        self.inner.len_bytes()
    }

    fn len_pkts(&self) -> usize {
        self.inner.len_pkts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(seq: u64) -> Packet {
        let mut p = Packet::new(SimTime::ZERO).with_size(1000);
        p.seq = seq;
        p
    }

    fn cfg() -> RedConfig {
        RedConfig {
            min_th: 5.0,
            max_th: 15.0,
            max_p: 0.1,
            weight: 0.2,
            cap_bytes: 1_000_000,
            ..RedConfig::default()
        }
    }

    #[test]
    fn accepts_everything_when_nearly_empty() {
        let mut q = RedQueue::new(cfg());
        let mut drops = Vec::new();
        for i in 0..4 {
            q.enqueue(pkt(i), SimTime::from_micros(i), &mut drops);
        }
        assert!(drops.is_empty(), "no drops expected below min_th");
    }

    #[test]
    fn forces_drops_above_max_th() {
        let mut q = RedQueue::new(cfg());
        let mut drops = Vec::new();
        // Flood without draining: the average chases the instantaneous
        // queue length and must eventually exceed max_th.
        for i in 0..500 {
            q.enqueue(pkt(i), SimTime::from_nanos(i), &mut drops);
        }
        assert!(
            drops.iter().any(|d| d.reason == DropReason::RedForced),
            "sustained overload must trigger forced drops"
        );
    }

    #[test]
    fn early_drops_between_thresholds() {
        let mut q = RedQueue::new(cfg());
        let mut drops = Vec::new();
        for i in 0..200 {
            q.enqueue(pkt(i), SimTime::from_nanos(i), &mut drops);
            // Drain a little to keep the queue hovering in the RED band.
            if q.len_pkts() > 10 {
                q.dequeue(SimTime::from_nanos(i));
            }
        }
        assert!(
            drops.iter().any(|d| d.reason == DropReason::RedEarly),
            "queue hovering between thresholds must produce early drops"
        );
    }

    #[test]
    fn average_decays_while_idle() {
        let mut q = RedQueue::new(cfg());
        let mut drops = Vec::new();
        for i in 0..20 {
            q.enqueue(pkt(i), SimTime::from_nanos(i), &mut drops);
        }
        let avg_loaded = q.avg_queue();
        while q.dequeue(SimTime::from_micros(1)).is_some() {}
        // Arrive again after a long idle gap: the average must have decayed.
        q.enqueue(pkt(999), SimTime::from_secs(1), &mut drops);
        assert!(
            q.avg_queue() < avg_loaded / 2.0,
            "idle decay should shrink the average (was {avg_loaded}, now {})",
            q.avg_queue()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut q = RedQueue::new(cfg());
            let mut drops = Vec::new();
            for i in 0..300 {
                q.enqueue(pkt(i), SimTime::from_nanos(i * 10), &mut drops);
                if i % 3 == 0 {
                    q.dequeue(SimTime::from_nanos(i * 10));
                }
            }
            drops.iter().map(|d| d.packet.seq).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "min_th < max_th")]
    fn rejects_inverted_thresholds() {
        let _ = RedQueue::new(RedConfig {
            min_th: 10.0,
            max_th: 5.0,
            ..RedConfig::default()
        });
    }
}
