//! Strict-priority queue bank.
//!
//! ACC-Turbo's data plane maps every packet to one of a small number of
//! priority queues (paper §5.2, §6); the traffic manager then drains the
//! queues in strict priority order (queue 0 first). The bank models a
//! shared packet buffer carved into per-queue byte budgets, like the
//! Tofino traffic manager the paper deploys on.

use super::{FifoQueue, QueueDiscipline};
use crate::packet::{Dropped, Packet};
use crate::time::SimTime;

/// A bank of strict-priority FIFO queues. Queue 0 has the highest priority.
#[derive(Debug, Clone)]
pub struct PriorityBank {
    queues: Vec<FifoQueue>,
    shared_cap: u64,
}

impl PriorityBank {
    /// Creates `n` queues, each with `cap_bytes_each` bytes of buffer.
    ///
    /// Panics when `n` is zero.
    pub fn new(n: usize, cap_bytes_each: u64) -> Self {
        assert!(n > 0, "a priority bank needs at least one queue");
        PriorityBank {
            queues: (0..n).map(|_| FifoQueue::new(cap_bytes_each)).collect(),
            shared_cap: u64::MAX,
        }
    }

    /// Additionally caps the *total* buffered bytes across all queues,
    /// modeling a traffic manager's shared packet buffer: each queue may
    /// burst up to its own cap, but the bank never holds more than
    /// `shared_cap` in total.
    pub fn with_shared_cap(mut self, shared_cap: u64) -> Self {
        assert!(shared_cap > 0, "shared capacity must be positive");
        self.shared_cap = shared_cap;
        self
    }

    /// Number of queues in the bank.
    pub fn num_queues(&self) -> usize {
        self.queues.len()
    }

    /// Enqueues `pkt` into queue `idx` (clamped to the lowest priority if
    /// out of range, mirroring a table miss mapped to best effort).
    pub fn enqueue_to(&mut self, idx: usize, pkt: Packet, now: SimTime, drops: &mut Vec<Dropped>) {
        let idx = idx.min(self.queues.len() - 1);
        if self.len_bytes() + pkt.size as u64 > self.shared_cap {
            drops.push(Dropped {
                packet: pkt,
                reason: crate::packet::DropReason::TailDrop,
            });
            return;
        }
        self.queues[idx].enqueue(pkt, now, drops);
    }

    /// Packets queued at priority `idx`.
    pub fn len_pkts_at(&self, idx: usize) -> usize {
        self.queues[idx].len_pkts()
    }

    /// Bytes queued at priority `idx`.
    pub fn len_bytes_at(&self, idx: usize) -> u64 {
        self.queues[idx].len_bytes()
    }
}

impl QueueDiscipline for PriorityBank {
    /// Trait-level enqueue targets the highest-priority queue; pipelines
    /// that classify packets use [`PriorityBank::enqueue_to`] instead.
    fn enqueue(&mut self, pkt: Packet, now: SimTime, drops: &mut Vec<Dropped>) {
        self.enqueue_to(0, pkt, now, drops);
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
        self.queues.iter_mut().find_map(|q| q.dequeue(now))
    }

    fn len_bytes(&self) -> u64 {
        self.queues.iter().map(|q| q.len_bytes()).sum()
    }

    fn len_pkts(&self) -> usize {
        self.queues.iter().map(|q| q.len_pkts()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(seq: u64) -> Packet {
        let mut p = Packet::new(SimTime::ZERO).with_size(100);
        p.seq = seq;
        p
    }

    #[test]
    fn strict_priority_ordering() {
        let mut bank = PriorityBank::new(3, 10_000);
        let mut drops = Vec::new();
        bank.enqueue_to(2, pkt(0), SimTime::ZERO, &mut drops);
        bank.enqueue_to(0, pkt(1), SimTime::ZERO, &mut drops);
        bank.enqueue_to(1, pkt(2), SimTime::ZERO, &mut drops);
        bank.enqueue_to(0, pkt(3), SimTime::ZERO, &mut drops);
        let order: Vec<u64> = std::iter::from_fn(|| bank.dequeue(SimTime::ZERO))
            .map(|p| p.seq)
            .collect();
        assert_eq!(order, vec![1, 3, 2, 0]);
    }

    #[test]
    fn per_queue_overflow_is_isolated() {
        let mut bank = PriorityBank::new(2, 150);
        let mut drops = Vec::new();
        bank.enqueue_to(1, pkt(0), SimTime::ZERO, &mut drops);
        bank.enqueue_to(1, pkt(1), SimTime::ZERO, &mut drops); // overflows queue 1
        bank.enqueue_to(0, pkt(2), SimTime::ZERO, &mut drops); // queue 0 unaffected
        assert_eq!(drops.len(), 1);
        assert_eq!(drops[0].packet.seq, 1);
        assert_eq!(bank.len_pkts_at(0), 1);
        assert_eq!(bank.len_pkts_at(1), 1);
    }

    #[test]
    fn out_of_range_index_maps_to_lowest_priority() {
        let mut bank = PriorityBank::new(2, 10_000);
        let mut drops = Vec::new();
        bank.enqueue_to(99, pkt(0), SimTime::ZERO, &mut drops);
        assert_eq!(bank.len_pkts_at(1), 1);
    }

    #[test]
    fn aggregate_accounting() {
        let mut bank = PriorityBank::new(4, 10_000);
        let mut drops = Vec::new();
        for i in 0..8 {
            bank.enqueue_to((i % 4) as usize, pkt(i), SimTime::ZERO, &mut drops);
        }
        assert_eq!(bank.len_pkts(), 8);
        assert_eq!(bank.len_bytes(), 800);
    }
}
