//! Tail-drop FIFO queue.

use super::QueueDiscipline;
use crate::packet::{DropReason, Dropped, Packet};
use crate::time::SimTime;
use std::collections::VecDeque;

/// A byte-bounded First-In First-Out queue with tail drop.
///
/// This is both the undefended baseline of every experiment ("FIFO" in the
/// figures) and the building block of [`super::PriorityBank`].
#[derive(Debug, Clone)]
pub struct FifoQueue {
    queue: VecDeque<Packet>,
    cap_bytes: u64,
    cap_pkts: usize,
    bytes: u64,
}

impl FifoQueue {
    /// Creates a FIFO with the given capacity in bytes.
    ///
    /// Panics on a zero capacity, which could never accept a packet.
    pub fn new(cap_bytes: u64) -> Self {
        assert!(cap_bytes > 0, "FIFO capacity must be positive");
        FifoQueue {
            queue: VecDeque::new(),
            cap_bytes,
            cap_pkts: usize::MAX,
            bytes: 0,
        }
    }

    /// Additionally caps the queue at `pkts` packets. Real switch buffers
    /// are organized in fixed-size cells, so a nearly-full queue does not
    /// preferentially admit small packets the way a pure byte cap would.
    pub fn with_pkt_cap(mut self, pkts: usize) -> Self {
        assert!(pkts > 0, "packet cap must be positive");
        self.cap_pkts = pkts;
        self
    }

    /// The configured capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.cap_bytes
    }

    /// Whether `pkt` would fit right now.
    pub fn fits(&self, pkt: &Packet) -> bool {
        self.bytes + pkt.size as u64 <= self.cap_bytes && self.queue.len() < self.cap_pkts
    }

    /// Peeks at the head-of-line packet.
    pub fn peek(&self) -> Option<&Packet> {
        self.queue.front()
    }
}

impl QueueDiscipline for FifoQueue {
    fn enqueue(&mut self, pkt: Packet, _now: SimTime, drops: &mut Vec<Dropped>) {
        if self.fits(&pkt) {
            self.bytes += pkt.size as u64;
            self.queue.push_back(pkt);
        } else {
            drops.push(Dropped {
                packet: pkt,
                reason: DropReason::TailDrop,
            });
        }
    }

    fn dequeue(&mut self, _now: SimTime) -> Option<Packet> {
        let pkt = self.queue.pop_front()?;
        self.bytes -= pkt.size as u64;
        Some(pkt)
    }

    fn len_bytes(&self) -> u64 {
        self.bytes
    }

    fn len_pkts(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn pkt(size: u32, seq: u64) -> Packet {
        let mut p = Packet::new(SimTime::ZERO).with_size(size);
        p.seq = seq;
        p
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = FifoQueue::new(10_000);
        let mut drops = Vec::new();
        for i in 0..5 {
            q.enqueue(pkt(100, i), SimTime::ZERO, &mut drops);
        }
        assert!(drops.is_empty());
        for i in 0..5 {
            assert_eq!(q.dequeue(SimTime::ZERO).unwrap().seq, i);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn tail_drop_on_overflow() {
        let mut q = FifoQueue::new(250);
        let mut drops = Vec::new();
        q.enqueue(pkt(100, 0), SimTime::ZERO, &mut drops);
        q.enqueue(pkt(100, 1), SimTime::ZERO, &mut drops);
        q.enqueue(pkt(100, 2), SimTime::ZERO, &mut drops); // would exceed 250
        assert_eq!(drops.len(), 1);
        assert_eq!(drops[0].packet.seq, 2);
        assert_eq!(drops[0].reason, DropReason::TailDrop);
        assert_eq!(q.len_pkts(), 2);
        assert_eq!(q.len_bytes(), 200);
    }

    #[test]
    fn byte_accounting_through_mixed_ops() {
        let mut q = FifoQueue::new(1_000);
        let mut drops = Vec::new();
        q.enqueue(pkt(300, 0), SimTime::ZERO, &mut drops);
        q.enqueue(pkt(400, 1), SimTime::ZERO, &mut drops);
        assert_eq!(q.len_bytes(), 700);
        q.dequeue(SimTime::ZERO);
        assert_eq!(q.len_bytes(), 400);
        q.enqueue(pkt(600, 2), SimTime::ZERO, &mut drops);
        assert_eq!(q.len_bytes(), 1_000);
        assert!(!q.fits(&pkt(1, 3)));
    }

    #[test]
    fn exact_fit_accepted() {
        let mut q = FifoQueue::new(100);
        let mut drops = Vec::new();
        q.enqueue(pkt(100, 0), SimTime::ZERO, &mut drops);
        assert!(drops.is_empty());
        assert_eq!(q.len_bytes(), 100);
    }

    #[test]
    fn dequeue_empty_returns_none() {
        let mut q = FifoQueue::new(100);
        assert!(q.dequeue(SimTime::ZERO).is_none());
    }
}
