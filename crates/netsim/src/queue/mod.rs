//! Queue disciplines.
//!
//! The paper exercises four queueing behaviours, all built here from
//! scratch:
//!
//! * [`FifoQueue`] — the undefended baseline (tail drop).
//! * [`RedQueue`] — Random Early Detection, the substrate of classic ACC
//!   (§2.1): drops probabilistically as the average queue grows, and
//!   reports every drop so the ACC agent can cluster the dropped headers.
//! * [`PriorityBank`] — a bank of strict-priority FIFO queues, the
//!   data-plane scheduler ACC-Turbo builds on (§5.2): packets are enqueued
//!   to the queue chosen by the pipeline and drained lowest-index-first.
//! * [`PifoQueue`] — a rank-ordered (Push-In First-Out) queue used for the
//!   "ideal scheduler" baseline of §8.2 and the unconstrained ACC-Turbo
//!   variants.

mod fifo;
mod pifo;
mod priority;
mod red;

pub use fifo::FifoQueue;
pub use pifo::PifoQueue;
pub use priority::PriorityBank;
pub use red::{RedConfig, RedQueue};

use crate::packet::{Dropped, Packet};
use crate::time::SimTime;

/// A queue discipline with a single logical enqueue point.
///
/// `enqueue` pushes any packets dropped as a consequence of the arrival
/// (usually the arriving packet itself; for rank-ordered queues possibly an
/// evicted resident) into `drops`, reusing the caller's buffer so the hot
/// path never allocates.
pub trait QueueDiscipline {
    /// Offers `pkt` to the queue at time `now`.
    fn enqueue(&mut self, pkt: Packet, now: SimTime, drops: &mut Vec<Dropped>);

    /// Removes the next packet to transmit, if any.
    fn dequeue(&mut self, now: SimTime) -> Option<Packet>;

    /// Total bytes currently queued.
    fn len_bytes(&self) -> u64;

    /// Total packets currently queued.
    fn len_pkts(&self) -> usize;

    /// True when no packets are queued.
    fn is_empty(&self) -> bool {
        self.len_pkts() == 0
    }
}
