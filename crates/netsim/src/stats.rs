//! Per-class traffic statistics.
//!
//! Every experiment in the paper reports one of three quantities, all
//! computed here from arrival/departure/drop events: per-class throughput
//! time series (Figs. 2, 3, 6, 7), drop-rate time series (Fig. 2 bottom),
//! and benign-drop percentages (Table 3, Figs. 3b, 8, 11b).

use crate::packet::{ClassId, Dropped, Packet};
use crate::time::{SimDuration, SimTime};

/// Packet and byte counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counts {
    /// Number of packets.
    pub pkts: u64,
    /// Number of bytes.
    pub bytes: u64,
}

impl Counts {
    fn add(&mut self, pkt: &Packet) {
        self.pkts += 1;
        self.bytes += pkt.size as u64;
    }
}

/// Counters for one time bucket, per class.
#[derive(Debug, Clone, Default)]
pub struct Bucket {
    arrived: Vec<Counts>,
    departed: Vec<Counts>,
    dropped: Vec<Counts>,
}

impl Bucket {
    fn slot(v: &mut Vec<Counts>, class: ClassId) -> &mut Counts {
        let idx = class.0 as usize;
        if v.len() <= idx {
            v.resize(idx + 1, Counts::default());
        }
        &mut v[idx]
    }

    fn get(v: &[Counts], class: ClassId) -> Counts {
        v.get(class.0 as usize).copied().unwrap_or_default()
    }

    fn total(v: &[Counts]) -> Counts {
        v.iter().fold(Counts::default(), |acc, c| Counts {
            pkts: acc.pkts + c.pkts,
            bytes: acc.bytes + c.bytes,
        })
    }
}

/// Collects per-class counters into fixed-width time buckets.
#[derive(Debug, Clone)]
pub struct StatsCollector {
    interval: SimDuration,
    buckets: Vec<Bucket>,
}

impl StatsCollector {
    /// Creates a collector with the given bucket width.
    pub fn new(interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "stats interval must be positive");
        StatsCollector {
            interval,
            buckets: Vec::new(),
        }
    }

    /// The configured bucket width.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Number of buckets touched so far.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    fn bucket_mut(&mut self, t: SimTime) -> &mut Bucket {
        let idx = t.bucket(self.interval) as usize;
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, Bucket::default());
        }
        &mut self.buckets[idx]
    }

    /// Records a packet arriving at the switch.
    pub fn on_arrival(&mut self, pkt: &Packet) {
        let t = pkt.arrival;
        let class = pkt.class;
        Bucket::slot(&mut self.bucket_mut(t).arrived, class).add(pkt);
    }

    /// Records a packet finishing transmission on the output link at `now`.
    pub fn on_depart(&mut self, pkt: &Packet, now: SimTime) {
        let class = pkt.class;
        Bucket::slot(&mut self.bucket_mut(now).departed, class).add(pkt);
    }

    /// Records a drop at `now`.
    pub fn on_drop(&mut self, dropped: &Dropped, now: SimTime) {
        let class = dropped.packet.class;
        Bucket::slot(&mut self.bucket_mut(now).dropped, class).add(&dropped.packet);
    }

    /// Departed throughput of `class` in bucket `idx`, in bits per second.
    pub fn throughput_bps(&self, idx: usize, class: ClassId) -> f64 {
        let bytes = self
            .buckets
            .get(idx)
            .map(|b| Bucket::get(&b.departed, class).bytes)
            .unwrap_or(0);
        bytes as f64 * 8.0 / self.interval.as_secs_f64()
    }

    /// Arrival (offered) rate of `class` in bucket `idx`, in bits/s.
    pub fn arrival_bps(&self, idx: usize, class: ClassId) -> f64 {
        let bytes = self
            .buckets
            .get(idx)
            .map(|b| Bucket::get(&b.arrived, class).bytes)
            .unwrap_or(0);
        bytes as f64 * 8.0 / self.interval.as_secs_f64()
    }

    /// Departed throughput of all attack classes combined in bucket `idx`.
    pub fn attack_throughput_bps(&self, idx: usize) -> f64 {
        let Some(b) = self.buckets.get(idx) else {
            return 0.0;
        };
        let bytes: u64 = b
            .departed
            .iter()
            .enumerate()
            .filter(|(class, _)| ClassId(*class as u16).is_attack())
            .map(|(_, c)| c.bytes)
            .sum();
        bytes as f64 * 8.0 / self.interval.as_secs_f64()
    }

    /// Drop rate (dropped pkts / arrived pkts) in bucket `idx`, across all
    /// classes; zero when nothing arrived.
    pub fn drop_rate(&self, idx: usize) -> f64 {
        let Some(b) = self.buckets.get(idx) else {
            return 0.0;
        };
        let arrived = Bucket::total(&b.arrived).pkts;
        if arrived == 0 {
            return 0.0;
        }
        Bucket::total(&b.dropped).pkts as f64 / arrived as f64
    }

    /// Total arrived counts for `class` over the whole run.
    pub fn total_arrived(&self, class: ClassId) -> Counts {
        self.fold(|b| Bucket::get(&b.arrived, class))
    }

    /// Total departed counts for `class` over the whole run.
    pub fn total_departed(&self, class: ClassId) -> Counts {
        self.fold(|b| Bucket::get(&b.departed, class))
    }

    /// Total dropped counts for `class` over the whole run.
    pub fn total_dropped(&self, class: ClassId) -> Counts {
        self.fold(|b| Bucket::get(&b.dropped, class))
    }

    fn fold(&self, f: impl Fn(&Bucket) -> Counts) -> Counts {
        self.buckets.iter().fold(Counts::default(), |acc, b| {
            let c = f(b);
            Counts {
                pkts: acc.pkts + c.pkts,
                bytes: acc.bytes + c.bytes,
            }
        })
    }

    /// Percentage (0–100) of benign packets dropped over the whole run —
    /// the headline metric of Table 3 and Figs. 3b/8/11b.
    pub fn benign_drop_pct(&self) -> f64 {
        let arrived = self.total_arrived(ClassId::BENIGN).pkts;
        if arrived == 0 {
            return 0.0;
        }
        100.0 * self.total_dropped(ClassId::BENIGN).pkts as f64 / arrived as f64
    }

    /// Percentage (0–100) of packets of the given classes dropped over
    /// the whole run (e.g. the "benign" aggregates 1–4 of the Fig. 2/3
    /// scenarios, where class 0 is unused).
    pub fn drop_pct_of(&self, classes: &[ClassId]) -> f64 {
        let arrived: u64 = classes.iter().map(|&c| self.total_arrived(c).pkts).sum();
        if arrived == 0 {
            return 0.0;
        }
        let dropped: u64 = classes.iter().map(|&c| self.total_dropped(c).pkts).sum();
        100.0 * dropped as f64 / arrived as f64
    }

    /// Percentage (0–100) of packets of all attack classes dropped.
    pub fn attack_drop_pct(&self) -> f64 {
        let (mut arrived, mut dropped) = (0u64, 0u64);
        for b in &self.buckets {
            for (class, c) in b.arrived.iter().enumerate() {
                if ClassId(class as u16).is_attack() {
                    arrived += c.pkts;
                }
            }
            for (class, c) in b.dropped.iter().enumerate() {
                if ClassId(class as u16).is_attack() {
                    dropped += c.pkts;
                }
            }
        }
        if arrived == 0 {
            0.0
        } else {
            100.0 * dropped as f64 / arrived as f64
        }
    }

    /// Highest class id observed (useful for iterating report columns).
    pub fn max_class(&self) -> u16 {
        self.buckets
            .iter()
            .map(|b| b.arrived.len().max(b.departed.len()).max(b.dropped.len()))
            .max()
            .unwrap_or(0)
            .saturating_sub(1) as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(t_ms: u64, size: u32, class: u16) -> Packet {
        Packet::new(SimTime::from_millis(t_ms))
            .with_size(size)
            .with_class(ClassId(class))
    }

    #[test]
    fn throughput_per_bucket() {
        let mut s = StatsCollector::new(SimDuration::from_secs(1));
        // 125_000 bytes departing in bucket 0 = 1 Mbps.
        let p = pkt(0, 125_000, 0);
        s.on_arrival(&p);
        s.on_depart(&p, SimTime::from_millis(500));
        assert_eq!(s.throughput_bps(0, ClassId::BENIGN), 1_000_000.0);
        assert_eq!(s.throughput_bps(1, ClassId::BENIGN), 0.0);
    }

    #[test]
    fn drop_rate_per_bucket() {
        let mut s = StatsCollector::new(SimDuration::from_secs(1));
        for i in 0..10 {
            let p = pkt(i * 10, 100, 0);
            s.on_arrival(&p);
            if i < 3 {
                s.on_drop(
                    &Dropped {
                        packet: p,
                        reason: crate::packet::DropReason::TailDrop,
                    },
                    SimTime::from_millis(i * 10),
                );
            }
        }
        assert!((s.drop_rate(0) - 0.3).abs() < 1e-12);
        assert_eq!(s.drop_rate(5), 0.0);
    }

    #[test]
    fn benign_drop_pct_counts_only_benign() {
        let mut s = StatsCollector::new(SimDuration::from_secs(1));
        for class in [0u16, 1] {
            for i in 0..4 {
                let p = pkt(i, 100, class);
                s.on_arrival(&p);
            }
        }
        // Drop 1 benign of 4 (25%) and 4 attack packets.
        s.on_drop(
            &Dropped {
                packet: pkt(0, 100, 0),
                reason: crate::packet::DropReason::TailDrop,
            },
            SimTime::ZERO,
        );
        for i in 0..4 {
            s.on_drop(
                &Dropped {
                    packet: pkt(i, 100, 1),
                    reason: crate::packet::DropReason::TailDrop,
                },
                SimTime::ZERO,
            );
        }
        assert!((s.benign_drop_pct() - 25.0).abs() < 1e-12);
        assert!((s.attack_drop_pct() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn attack_throughput_aggregates_classes() {
        let mut s = StatsCollector::new(SimDuration::from_secs(1));
        for class in [1u16, 2] {
            let p = pkt(100, 125_000, class);
            s.on_depart(&p, SimTime::from_millis(100));
        }
        assert_eq!(s.attack_throughput_bps(0), 2_000_000.0);
    }

    #[test]
    fn totals_accumulate_across_buckets() {
        let mut s = StatsCollector::new(SimDuration::from_secs(1));
        for t in [0u64, 1500, 3200] {
            let p = pkt(t, 100, 2);
            s.on_arrival(&p);
            s.on_depart(&p, SimTime::from_millis(t));
        }
        assert_eq!(s.total_arrived(ClassId(2)).pkts, 3);
        assert_eq!(s.total_departed(ClassId(2)).bytes, 300);
        assert_eq!(s.num_buckets(), 4);
        assert_eq!(s.max_class(), 2);
    }

    #[test]
    fn events_exactly_on_an_interval_edge_open_the_next_bucket() {
        // Buckets are left-closed right-open: [0,1s) [1s,2s) ... An event
        // at exactly t = k*interval belongs to bucket k, never k-1.
        let mut s = StatsCollector::new(SimDuration::from_secs(1));
        let at = |ns: u64| {
            Packet::new(SimTime::from_nanos(ns))
                .with_size(100)
                .with_class(ClassId::BENIGN)
        };
        s.on_arrival(&at(0)); // opens bucket 0
        s.on_arrival(&at(1_000_000_000 - 1)); // last instant of bucket 0
        s.on_arrival(&at(1_000_000_000)); // first instant of bucket 1
        s.on_arrival(&at(2_000_000_000)); // first instant of bucket 2
        assert_eq!(s.num_buckets(), 3);
        let arrived_pkts = |idx: usize| {
            // Reconstruct per-bucket counts through the public rate API:
            // bytes/interval * interval = bytes; 100 B per packet.
            (s.arrival_bps(idx, ClassId::BENIGN) / 8.0 / 100.0).round() as u64
        };
        assert_eq!(arrived_pkts(0), 2);
        assert_eq!(arrived_pkts(1), 1);
        assert_eq!(arrived_pkts(2), 1);
    }

    #[test]
    fn departures_and_drops_bucket_by_event_time_not_arrival_time() {
        // A packet arriving late in bucket 0 but departing (or being
        // dropped) just past the edge must be charged to bucket 1.
        let mut s = StatsCollector::new(SimDuration::from_secs(1));
        let p = pkt(999, 125_000, 0); // arrival t = 0.999 s → bucket 0
        s.on_arrival(&p);
        s.on_depart(&p, SimTime::from_secs(1)); // edge → bucket 1
        assert_eq!(s.throughput_bps(0, ClassId::BENIGN), 0.0);
        assert_eq!(s.throughput_bps(1, ClassId::BENIGN), 1_000_000.0);

        let q = pkt(999, 100, 0);
        s.on_arrival(&q);
        s.on_drop(
            &Dropped {
                packet: q,
                reason: crate::packet::DropReason::TailDrop,
            },
            SimTime::from_secs(1),
        );
        // Both arrivals landed in bucket 0, the drop in bucket 1: the
        // bucket-0 drop rate stays zero even though the packet arrived
        // there — and so does bucket 1's, because drop_rate divides by
        // the *same bucket's* arrivals (none landed there). Only the
        // run-level totals see the drop.
        assert_eq!(s.drop_rate(0), 0.0);
        assert_eq!(s.drop_rate(1), 0.0);
        assert_eq!(s.total_dropped(ClassId::BENIGN).pkts, 1);
    }

    #[test]
    fn sub_second_intervals_normalize_rates_by_the_bucket_width() {
        // 250 ms buckets: 25_000 B in one bucket is 25_000*8/0.25 bps.
        let mut s = StatsCollector::new(SimDuration::from_millis(250));
        let p = pkt(0, 25_000, 0);
        s.on_arrival(&p);
        s.on_depart(&p, SimTime::from_millis(250)); // edge → bucket 1
        s.on_depart(&p, SimTime::from_millis(500)); // edge → bucket 2
        assert_eq!(s.num_buckets(), 3);
        assert_eq!(s.arrival_bps(0, ClassId::BENIGN), 800_000.0);
        assert_eq!(s.throughput_bps(0, ClassId::BENIGN), 0.0);
        assert_eq!(s.throughput_bps(1, ClassId::BENIGN), 800_000.0);
        assert_eq!(s.throughput_bps(2, ClassId::BENIGN), 800_000.0);
    }

    #[test]
    fn empty_collector_is_all_zero() {
        let s = StatsCollector::new(SimDuration::from_secs(1));
        assert_eq!(s.benign_drop_pct(), 0.0);
        assert_eq!(s.attack_drop_pct(), 0.0);
        assert_eq!(s.drop_rate(0), 0.0);
        assert_eq!(s.total_arrived(ClassId::BENIGN), Counts::default());
    }
}
