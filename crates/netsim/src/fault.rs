//! Deterministic fault injection (DESIGN.md §9).
//!
//! A [`FaultSchedule`] is a seeded decision machine that perturbs the
//! substrate the defense runs on: it can drop, delay or jitter
//! control-plane ticks, serve stale cluster snapshots to the controller,
//! derate the output link in flap windows, and reorder or corrupt-drop
//! packets before they reach the switch. Every decision is drawn from a
//! per-concern `accturbo-prng` stream derived from one seed, so the same
//! seed reproduces the same fault event stream bit-for-bit regardless of
//! how many worker threads the experiment harness uses.
//!
//! The engine, the `accturbo-core` pipeline and the packet sources accept
//! an `Option<&FaultInjector>` / `Option<FaultInjector>`: with `None` (the
//! default everywhere) the fault-free path executes exactly the
//! pre-existing code — byte-identical output, no allocation — which the
//! `fault_noop_equivalence` differential test locks down.

use crate::packet::Packet;
use crate::source::PacketSource;
use crate::time::{SimDuration, SimTime};
use accturbo_obs::{Event, Tracer};
use accturbo_prng::{Rng, SeedableRng, StdRng};
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;

/// Per-concern stream separators: one SplitMix64-expanded seed per fault
/// class, so the packet-fate stream never shifts when an unrelated knob
/// (say the control-tick drop rate) changes how often its own stream is
/// consumed.
const STREAM_CTRL: u64 = 0x41;
const STREAM_PKT: u64 = 0x42;
const STREAM_LINK: u64 = 0x43;
const STREAM_STALE: u64 = 0x44;

/// Intensities and shapes of every fault class. All probabilities are per
/// decision point and must lie in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed for every per-concern decision stream.
    pub seed: u64,
    /// P(a control tick is suppressed entirely).
    pub ctrl_drop: f64,
    /// P(a control tick is delayed), evaluated when the tick survives.
    pub ctrl_delay: f64,
    /// Maximum control-tick delay (uniform in `(0, max]`).
    pub ctrl_delay_max: SimDuration,
    /// P(a control tick sees the previous window's statistics instead of
    /// a fresh poll).
    pub stale_snapshot: f64,
    /// P(a packet is corrupt-dropped before reaching the switch).
    pub pkt_drop: f64,
    /// P(a packet is jittered, which reorders it past its neighbours).
    pub pkt_reorder: f64,
    /// Maximum per-packet jitter (uniform in `(0, max]`).
    pub pkt_jitter_max: SimDuration,
    /// Fraction of time the output link spends derated (flap windows).
    pub link_flap: f64,
    /// Capacity factor during a flap window, in `(0, 1]`.
    pub link_derate: f64,
    /// Mean renewal period of the flap process (one up + one down phase).
    pub flap_period: SimDuration,
}

impl FaultConfig {
    /// A schedule that never injects anything.
    pub fn none(seed: u64) -> Self {
        FaultConfig {
            seed,
            ctrl_drop: 0.0,
            ctrl_delay: 0.0,
            ctrl_delay_max: SimDuration::from_millis(100),
            stale_snapshot: 0.0,
            pkt_drop: 0.0,
            pkt_reorder: 0.0,
            pkt_jitter_max: SimDuration::from_millis(5),
            link_flap: 0.0,
            link_derate: 0.5,
            flap_period: SimDuration::from_millis(500),
        }
    }

    /// One knob for the robustness sweep: every fault class scaled from a
    /// single `intensity` in `[0, 1]`. Packet corrupt-drops are scaled
    /// down (a tenth of the intensity) because they destroy goodput
    /// linearly and would mask the control-plane degradations the sweep
    /// is about.
    pub fn uniform(intensity: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&intensity),
            "fault intensity must be in [0, 1], got {intensity}"
        );
        FaultConfig {
            ctrl_drop: intensity,
            ctrl_delay: intensity,
            stale_snapshot: intensity,
            pkt_drop: intensity * 0.1,
            pkt_reorder: intensity,
            link_flap: intensity * 0.5,
            ..FaultConfig::none(seed)
        }
    }

    fn validate(&self) {
        for (name, p) in [
            ("ctrl_drop", self.ctrl_drop),
            ("ctrl_delay", self.ctrl_delay),
            ("stale_snapshot", self.stale_snapshot),
            ("pkt_drop", self.pkt_drop),
            ("pkt_reorder", self.pkt_reorder),
            ("link_flap", self.link_flap),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "fault probability `{name}` must be in [0, 1], got {p}"
            );
        }
        assert!(
            self.link_derate > 0.0 && self.link_derate <= 1.0,
            "link_derate must be in (0, 1], got {}",
            self.link_derate
        );
    }
}

/// Counters of every fault actually injected so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Control ticks suppressed.
    pub ctrl_dropped: u64,
    /// Control ticks delayed.
    pub ctrl_delayed: u64,
    /// Control ticks served a stale snapshot.
    pub stale_served: u64,
    /// Packets corrupt-dropped before the switch.
    pub pkt_dropped: u64,
    /// Packets jittered (reordered).
    pub pkt_reordered: u64,
    /// Link-flap windows generated.
    pub flap_windows: u64,
}

/// One injected fault, for the determinism property tests: the decision
/// stream of a schedule is fully described by this log.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRecord {
    /// Simulated time the fault applies at, nanoseconds.
    pub at_ns: u64,
    /// Fault kind tag (matches the `fault` obs event's `kind` field).
    pub kind: &'static str,
    /// Kind-specific magnitude (delay ns, jitter ns, window length ns,
    /// derate factor, or 0 for pure drops).
    pub value: f64,
}

/// What the engine should do with the control tick that just fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlAction {
    /// Run the tick normally.
    Run,
    /// Suppress it: the switch's `control_missed` hook runs instead.
    Skip,
    /// Postpone it by the given delay; it then runs unconditionally.
    Delay(SimDuration),
}

/// What the fault plane decided for an injected packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PktFate {
    /// Deliver unchanged.
    Deliver,
    /// Corrupt-drop: the packet never reaches the switch.
    Drop,
    /// Deliver late by the given jitter (reordering it past neighbours).
    Delay(SimDuration),
}

/// The seeded fault decision machine. Usually accessed through a shared
/// [`FaultInjector`] handle so the engine, the switch and the source all
/// consult the same schedule.
#[derive(Debug)]
pub struct FaultSchedule {
    cfg: FaultConfig,
    ctrl_rng: StdRng,
    pkt_rng: StdRng,
    link_rng: StdRng,
    stale_rng: StdRng,
    /// Current (or next upcoming) flap window, generated lazily in time
    /// order so the window sequence is independent of when the link is
    /// actually sampled.
    flap_start: SimTime,
    flap_end: SimTime,
    stats: FaultStats,
    log: Option<Vec<FaultRecord>>,
}

impl FaultSchedule {
    /// Builds a schedule from a validated config.
    pub fn new(cfg: FaultConfig) -> Self {
        cfg.validate();
        let stream =
            |sep: u64| StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x9E37).wrapping_add(sep));
        FaultSchedule {
            ctrl_rng: stream(STREAM_CTRL),
            pkt_rng: stream(STREAM_PKT),
            link_rng: stream(STREAM_LINK),
            stale_rng: stream(STREAM_STALE),
            flap_start: SimTime::ZERO,
            flap_end: SimTime::ZERO,
            stats: FaultStats::default(),
            log: None,
            cfg,
        }
    }

    /// A schedule with every intensity at zero: consulted or not, it
    /// injects nothing and consumes no randomness.
    pub fn none(seed: u64) -> Self {
        FaultSchedule::new(FaultConfig::none(seed))
    }

    /// Whether this schedule can ever inject a fault.
    pub fn is_noop(&self) -> bool {
        let c = &self.cfg;
        c.ctrl_drop == 0.0
            && c.ctrl_delay == 0.0
            && c.stale_snapshot == 0.0
            && c.pkt_drop == 0.0
            && c.pkt_reorder == 0.0
            && c.link_flap == 0.0
    }

    /// Starts recording every injected fault into an inspectable log.
    pub fn enable_log(&mut self) {
        self.log = Some(Vec::new());
    }

    /// Takes the fault log accumulated since [`enable_log`](Self::enable_log).
    pub fn take_log(&mut self) -> Vec<FaultRecord> {
        self.log.take().unwrap_or_default()
    }

    /// Injection counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    fn note(&mut self, at: SimTime, kind: &'static str, value: f64, tracer: &mut dyn Tracer) {
        if let Some(log) = &mut self.log {
            log.push(FaultRecord {
                at_ns: at.as_nanos(),
                kind,
                value,
            });
        }
        if tracer.enabled() {
            tracer.record(at.as_nanos(), &Event::FaultInjected { kind, value });
        }
    }

    /// Decides the fate of the control tick firing at `now`.
    pub fn control_action(&mut self, now: SimTime, tracer: &mut dyn Tracer) -> ControlAction {
        if self.cfg.ctrl_drop > 0.0 && self.ctrl_rng.gen_bool(self.cfg.ctrl_drop) {
            self.stats.ctrl_dropped += 1;
            self.note(now, "ctrl_drop", 0.0, tracer);
            return ControlAction::Skip;
        }
        if self.cfg.ctrl_delay > 0.0 && self.ctrl_rng.gen_bool(self.cfg.ctrl_delay) {
            let max = self.cfg.ctrl_delay_max.as_nanos().max(1);
            let d = self.ctrl_rng.gen_range(1..=max);
            self.stats.ctrl_delayed += 1;
            self.note(now, "ctrl_delay", d as f64, tracer);
            return ControlAction::Delay(SimDuration::from_nanos(d));
        }
        ControlAction::Run
    }

    /// Whether the control tick at `now` sees a stale cluster snapshot.
    pub fn stale_snapshot(&mut self, now: SimTime, tracer: &mut dyn Tracer) -> bool {
        if self.cfg.stale_snapshot > 0.0 && self.stale_rng.gen_bool(self.cfg.stale_snapshot) {
            self.stats.stale_served += 1;
            self.note(now, "stale_snapshot", 0.0, tracer);
            return true;
        }
        false
    }

    /// Decides the fate of a packet injected at `arrival`.
    pub fn pkt_fate(&mut self, arrival: SimTime, tracer: &mut dyn Tracer) -> PktFate {
        if self.cfg.pkt_drop > 0.0 && self.pkt_rng.gen_bool(self.cfg.pkt_drop) {
            self.stats.pkt_dropped += 1;
            self.note(arrival, "pkt_drop", 0.0, tracer);
            return PktFate::Drop;
        }
        if self.cfg.pkt_reorder > 0.0 && self.pkt_rng.gen_bool(self.cfg.pkt_reorder) {
            let max = self.cfg.pkt_jitter_max.as_nanos().max(1);
            let d = self.pkt_rng.gen_range(1..=max);
            self.stats.pkt_reordered += 1;
            self.note(arrival, "pkt_reorder", d as f64, tracer);
            return PktFate::Delay(SimDuration::from_nanos(d));
        }
        PktFate::Deliver
    }

    /// The link capacity factor at `now`: `1.0` outside flap windows, the
    /// configured derate inside one. Windows form a renewal process
    /// generated in time order from the link stream, so the sequence does
    /// not depend on when (or how often) the engine samples the link.
    pub fn link_scale(&mut self, now: SimTime, tracer: &mut dyn Tracer) -> f64 {
        if self.cfg.link_flap <= 0.0 {
            return 1.0;
        }
        while self.flap_end <= now {
            let period = self.cfg.flap_period.as_nanos().max(2) as f64;
            let up = (period * (1.0 - self.cfg.link_flap)).max(1.0) as u64;
            let down = (period * self.cfg.link_flap).max(1.0) as u64;
            let gap = self.link_rng.gen_range(up / 2..=up + up / 2);
            let dur = self.link_rng.gen_range((down / 2).max(1)..=down + down / 2);
            self.flap_start = self.flap_end + SimDuration::from_nanos(gap.max(1));
            self.flap_end = self.flap_start + SimDuration::from_nanos(dur);
            self.stats.flap_windows += 1;
            self.note(self.flap_start, "link_flap", dur as f64, tracer);
        }
        if now >= self.flap_start {
            self.cfg.link_derate
        } else {
            1.0
        }
    }
}

/// A cheaply-cloneable shared handle to one [`FaultSchedule`], plus an
/// optional trace sink that surfaces every injected fault as an
/// `accturbo-obs` `fault` event. The engine, the pipeline and the faulted
/// source each hold a clone so all decisions come from one seeded
/// schedule.
#[derive(Clone)]
pub struct FaultInjector {
    inner: Rc<RefCell<FaultSchedule>>,
    tracer: Option<Rc<RefCell<dyn Tracer>>>,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("schedule", &self.inner.borrow())
            .field("traced", &self.tracer.is_some())
            .finish()
    }
}

impl FaultInjector {
    /// Wraps a schedule in a shared handle.
    pub fn new(schedule: FaultSchedule) -> Self {
        FaultInjector {
            inner: Rc::new(RefCell::new(schedule)),
            tracer: None,
        }
    }

    /// An injector that never injects anything (see also
    /// [`NoopFaultInjector`]).
    pub fn noop() -> Self {
        FaultInjector::new(FaultSchedule::none(0))
    }

    /// Installs a trace sink: every injected fault is recorded as a
    /// `fault` event at its simulated time.
    pub fn set_tracer(&mut self, tracer: Rc<RefCell<dyn Tracer>>) {
        self.tracer = Some(tracer);
    }

    /// Whether the underlying schedule can ever inject a fault.
    pub fn is_noop(&self) -> bool {
        self.inner.borrow().is_noop()
    }

    /// Starts recording the fault log (see [`FaultSchedule::enable_log`]).
    pub fn enable_log(&self) {
        self.inner.borrow_mut().enable_log();
    }

    /// Takes the accumulated fault log.
    pub fn take_log(&self) -> Vec<FaultRecord> {
        self.inner.borrow_mut().take_log()
    }

    /// Injection counters so far.
    pub fn stats(&self) -> FaultStats {
        self.inner.borrow().stats()
    }

    fn with_tracer<R>(&self, f: impl FnOnce(&mut FaultSchedule, &mut dyn Tracer) -> R) -> R {
        let mut sched = self.inner.borrow_mut();
        match &self.tracer {
            Some(t) => f(&mut sched, &mut *t.borrow_mut()),
            None => f(&mut sched, &mut accturbo_obs::NoopTracer),
        }
    }

    /// See [`FaultSchedule::control_action`].
    pub fn control_action(&self, now: SimTime) -> ControlAction {
        self.with_tracer(|s, t| s.control_action(now, t))
    }

    /// See [`FaultSchedule::stale_snapshot`].
    pub fn stale_snapshot(&self, now: SimTime) -> bool {
        self.with_tracer(|s, t| s.stale_snapshot(now, t))
    }

    /// See [`FaultSchedule::pkt_fate`].
    pub fn pkt_fate(&self, arrival: SimTime) -> PktFate {
        self.with_tracer(|s, t| s.pkt_fate(arrival, t))
    }

    /// See [`FaultSchedule::link_scale`].
    pub fn link_scale(&self, now: SimTime) -> f64 {
        self.with_tracer(|s, t| s.link_scale(now, t))
    }
}

/// The explicit "no faults" injector of the differential lockdown tests:
/// `NoopFaultInjector.into()` yields a [`FaultInjector`] whose schedule
/// is [`FaultSchedule::none`]. Threading it through the engine must leave
/// every figure byte-identical to the un-faulted code path.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopFaultInjector;

impl From<NoopFaultInjector> for FaultInjector {
    fn from(_: NoopFaultInjector) -> FaultInjector {
        FaultInjector::noop()
    }
}

/// Heap entry of the faulted source's reorder buffer.
struct Held {
    at: SimTime,
    seq: u64,
    pkt: Packet,
}

impl PartialEq for Held {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Held {}
impl PartialOrd for Held {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Held {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Seq tie-break keeps un-jittered packets in injection order.
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A source adapter applying the packet-level faults of a schedule:
/// corrupt-drops vanish before the switch, jittered packets are held in a
/// small reorder buffer and released at their perturbed time. Output
/// arrival times stay nondecreasing (a jittered packet can only move
/// later), so the engine's ordering invariant holds.
pub struct FaultedSource<S: PacketSource> {
    inner: S,
    faults: FaultInjector,
    heap: BinaryHeap<Reverse<Held>>,
    next_seq: u64,
    /// Latest original arrival pulled from `inner`: any future packet's
    /// release time is at least this, so the heap minimum at or below it
    /// is safe to emit.
    frontier: SimTime,
    exhausted: bool,
    injected: u64,
}

impl<S: PacketSource> FaultedSource<S> {
    /// Wraps `inner`, consulting `faults` for every packet.
    pub fn new(inner: S, faults: FaultInjector) -> Self {
        FaultedSource {
            inner,
            faults,
            heap: BinaryHeap::new(),
            next_seq: 0,
            frontier: SimTime::ZERO,
            exhausted: false,
            injected: 0,
        }
    }

    /// Packets pulled from the wrapped source so far (the "injected" side
    /// of the conservation law: injected = delivered + engine drops +
    /// fault drops once the simulation drains).
    pub fn injected(&self) -> u64 {
        self.injected
    }
}

impl<S: PacketSource> PacketSource for FaultedSource<S> {
    fn next_packet(&mut self) -> Option<Packet> {
        loop {
            if let Some(Reverse(top)) = self.heap.peek() {
                if self.exhausted || top.at <= self.frontier {
                    let Reverse(held) = self.heap.pop().expect("peeked entry exists");
                    let mut pkt = held.pkt;
                    pkt.arrival = held.at;
                    return Some(pkt);
                }
            } else if self.exhausted {
                return None;
            }
            match self.inner.next_packet() {
                None => self.exhausted = true,
                Some(pkt) => {
                    self.injected += 1;
                    self.frontier = pkt.arrival;
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    match self.faults.pkt_fate(pkt.arrival) {
                        PktFate::Drop => {}
                        PktFate::Deliver => self.heap.push(Reverse(Held {
                            at: pkt.arrival,
                            seq,
                            pkt,
                        })),
                        PktFate::Delay(d) => self.heap.push(Reverse(Held {
                            at: pkt.arrival + d,
                            seq,
                            pkt,
                        })),
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::VecSource;

    fn cbr(n: u64, gap_us: u64) -> Vec<Packet> {
        (0..n)
            .map(|i| Packet::new(SimTime::from_micros(i * gap_us)).with_size(1000))
            .collect()
    }

    #[test]
    fn noop_schedule_injects_nothing_and_draws_nothing() {
        let mut s = FaultSchedule::none(7);
        assert!(s.is_noop());
        let mut before = s.ctrl_rng.clone();
        for i in 0..100 {
            let t = SimTime::from_millis(i);
            assert_eq!(
                s.control_action(t, &mut accturbo_obs::NoopTracer),
                ControlAction::Run
            );
            assert!(!s.stale_snapshot(t, &mut accturbo_obs::NoopTracer));
            assert_eq!(
                s.pkt_fate(t, &mut accturbo_obs::NoopTracer),
                PktFate::Deliver
            );
            assert_eq!(s.link_scale(t, &mut accturbo_obs::NoopTracer), 1.0);
        }
        assert_eq!(s.stats(), FaultStats::default());
        assert_eq!(s.ctrl_rng.next_u64(), before.next_u64());
    }

    #[test]
    fn noop_faulted_source_is_an_identity_adapter() {
        let pkts = cbr(500, 100);
        let mut plain = VecSource::new(pkts.clone());
        let mut faulted = FaultedSource::new(VecSource::new(pkts), NoopFaultInjector.into());
        loop {
            let (a, b) = (plain.next_packet(), faulted.next_packet());
            match (&a, &b) {
                (Some(x), Some(y)) => {
                    assert_eq!(x.arrival, y.arrival);
                    assert_eq!(x.size, y.size);
                }
                (None, None) => break,
                _ => panic!("streams diverged"),
            }
        }
        assert_eq!(faulted.injected(), 500);
    }

    #[test]
    fn faulted_source_emits_nondecreasing_times_and_conserves_packets() {
        let inj = FaultInjector::new(FaultSchedule::new(FaultConfig {
            pkt_drop: 0.2,
            pkt_reorder: 0.5,
            pkt_jitter_max: SimDuration::from_millis(2),
            ..FaultConfig::none(11)
        }));
        let mut src = FaultedSource::new(VecSource::new(cbr(2_000, 50)), inj.clone());
        let mut emitted = 0u64;
        let mut last = SimTime::ZERO;
        while let Some(p) = src.next_packet() {
            assert!(p.arrival >= last, "reorder buffer broke time order");
            last = p.arrival;
            emitted += 1;
        }
        let stats = inj.stats();
        assert_eq!(src.injected(), 2_000);
        assert_eq!(emitted + stats.pkt_dropped, 2_000, "packet conservation");
        assert!(stats.pkt_dropped > 200, "drop prob 0.2 must bite");
        assert!(stats.pkt_reordered > 500, "reorder prob 0.5 must bite");
    }

    #[test]
    fn link_flap_windows_are_time_ordered_and_sampling_independent() {
        let cfg = FaultConfig {
            link_flap: 0.4,
            ..FaultConfig::none(3)
        };
        // Dense sampling and sparse sampling must agree wherever both
        // sample: the window sequence is generated in time order from the
        // schedule, not from the call pattern.
        let mut dense = FaultSchedule::new(cfg.clone());
        let mut sparse = FaultSchedule::new(cfg);
        for ms in 0..5_000u64 {
            let now = SimTime::from_millis(ms);
            let d = dense.link_scale(now, &mut accturbo_obs::NoopTracer);
            if ms % 97 == 0 {
                let s = sparse.link_scale(now, &mut accturbo_obs::NoopTracer);
                assert_eq!(d, s, "at {ms} ms");
            }
        }
        assert!(dense.stats().flap_windows > 0);
    }

    #[test]
    fn fault_events_reach_an_installed_tracer() {
        use accturbo_obs::RingTracer;
        let mut inj = FaultInjector::new(FaultSchedule::new(FaultConfig {
            ctrl_drop: 1.0,
            ..FaultConfig::none(5)
        }));
        let ring: Rc<RefCell<RingTracer>> = Rc::new(RefCell::new(RingTracer::new(100)));
        inj.set_tracer(ring.clone());
        assert_eq!(
            inj.control_action(SimTime::from_secs(1)),
            ControlAction::Skip
        );
        let t = ring.borrow();
        let faults = t.iter().filter(|(_, e)| e.kind() == "fault").count();
        assert_eq!(faults, 1, "the injected fault must be traced");
    }
}
