//! Packet-trace I/O: libpcap files and CSV.
//!
//! The paper replays CAIDA pcap traces as background traffic. This module
//! lets the reproduction do the same with real captures: a dependency-free
//! reader/writer for the classic libpcap format (magic `0xa1b2c3d4`,
//! microsecond timestamps) that parses Ethernet/IPv4/TCP/UDP headers into
//! [`Packet`]s, plus a CSV round-trip for generated workloads.
//!
//! Only the fields the defenses inspect are parsed; anything else
//! (IPv6, VLAN tags, truncated captures) is skipped with a counter rather
//! than an error, as trace tools conventionally do.

use crate::packet::{proto, ClassId, Packet};
use crate::source::VecSource;
use crate::time::SimTime;
use std::io::{self, Read, Write};
use std::net::Ipv4Addr;

/// Classic libpcap global-header magic (little-endian, µs timestamps).
const PCAP_MAGIC_LE: u32 = 0xa1b2_c3d4;
/// Link type: Ethernet.
const LINKTYPE_ETHERNET: u32 = 1;
/// Link type: raw IP (no link-layer header).
const LINKTYPE_RAW: u32 = 101;

/// Statistics from reading a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Packets parsed into [`Packet`]s.
    pub parsed: u64,
    /// Records skipped (non-IPv4, truncated, unsupported link layer).
    pub skipped: u64,
}

fn read_u32(buf: &[u8], at: usize, swap: bool) -> u32 {
    let b: [u8; 4] = buf[at..at + 4].try_into().expect("bounds checked");
    if swap {
        u32::from_be_bytes(b)
    } else {
        u32::from_le_bytes(b)
    }
}

/// Reads a libpcap capture into time-sorted [`Packet`]s.
///
/// Timestamps are rebased so the first packet arrives at t = 0. All
/// packets are labeled [`ClassId::BENIGN`]; callers replaying attack
/// captures can relabel afterwards.
pub fn read_pcap<R: Read>(mut reader: R) -> io::Result<(Vec<Packet>, TraceStats)> {
    let mut header = [0u8; 24];
    reader.read_exact(&mut header)?;
    let magic_le = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
    let magic_be = u32::from_be_bytes(header[..4].try_into().expect("4 bytes"));
    // `swap` = the file was written big-endian relative to our reader.
    let swap = if magic_le == PCAP_MAGIC_LE {
        false
    } else if magic_be == PCAP_MAGIC_LE {
        true
    } else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a classic libpcap file (nanosecond and pcapng variants unsupported)",
        ));
    };
    let linktype = read_u32(&header, 20, swap);
    if linktype != LINKTYPE_ETHERNET && linktype != LINKTYPE_RAW {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported link type {linktype}"),
        ));
    }
    let l2_offset = if linktype == LINKTYPE_ETHERNET { 14 } else { 0 };

    let mut packets = Vec::new();
    let mut stats = TraceStats::default();
    let mut first_ts: Option<u64> = None;
    let mut rec = [0u8; 16];
    loop {
        match reader.read_exact(&mut rec) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e),
        }
        let ts_sec = read_u32(&rec, 0, swap) as u64;
        let ts_usec = read_u32(&rec, 4, swap) as u64;
        let incl_len = read_u32(&rec, 8, swap) as usize;
        let orig_len = read_u32(&rec, 12, swap);
        let mut data = vec![0u8; incl_len];
        reader.read_exact(&mut data)?;

        let ts_ns = ts_sec * 1_000_000_000 + ts_usec * 1_000;
        let base = *first_ts.get_or_insert(ts_ns);
        let arrival = SimTime::from_nanos(ts_ns.saturating_sub(base));

        match parse_ipv4(
            &data[l2_offset.min(data.len())..],
            arrival,
            orig_len,
            l2_offset,
        ) {
            Some(pkt) => {
                packets.push(pkt);
                stats.parsed += 1;
            }
            None => stats.skipped += 1,
        }
    }
    packets.sort_by_key(|p| p.arrival);
    Ok((packets, stats))
}

/// Parses an IPv4 header (+TCP/UDP ports where present) from `ip`.
fn parse_ipv4(ip: &[u8], arrival: SimTime, orig_len: u32, l2: usize) -> Option<Packet> {
    if ip.len() < 20 || ip[0] >> 4 != 4 {
        return None;
    }
    let ihl = ((ip[0] & 0x0f) as usize) * 4;
    if ihl < 20 || ip.len() < ihl {
        return None;
    }
    let ip_len = u16::from_be_bytes([ip[2], ip[3]]);
    let ip_id = u16::from_be_bytes([ip[4], ip[5]]);
    let frag = u16::from_be_bytes([ip[6], ip[7]]) & 0x1fff;
    let ttl = ip[8];
    let protocol = ip[9];
    let src = Ipv4Addr::new(ip[12], ip[13], ip[14], ip[15]);
    let dst = Ipv4Addr::new(ip[16], ip[17], ip[18], ip[19]);

    let transport = &ip[ihl..];
    let (sport, dport, tcp_flags) = match protocol {
        proto::TCP if transport.len() >= 14 => (
            u16::from_be_bytes([transport[0], transport[1]]),
            u16::from_be_bytes([transport[2], transport[3]]),
            transport[13],
        ),
        proto::UDP if transport.len() >= 4 => (
            u16::from_be_bytes([transport[0], transport[1]]),
            u16::from_be_bytes([transport[2], transport[3]]),
            0,
        ),
        _ => (0, 0, 0),
    };

    let mut pkt = Packet::new(arrival)
        .with_size(orig_len.max(l2 as u32 + ip_len as u32))
        .with_src(src)
        .with_dst(dst)
        .with_ports(sport, dport)
        .with_proto(protocol)
        .with_ttl(ttl)
        .with_class(ClassId::BENIGN);
    pkt.ip_len = ip_len;
    pkt.ip_id = ip_id;
    pkt.frag_offset = frag;
    pkt.tcp_flags = tcp_flags;
    Some(pkt)
}

/// Writes `packets` as a classic libpcap capture (raw-IP link type,
/// synthesized IPv4+transport headers, headers-only payload).
pub fn write_pcap<W: Write>(mut writer: W, packets: &[Packet]) -> io::Result<()> {
    // Global header.
    writer.write_all(&PCAP_MAGIC_LE.to_le_bytes())?;
    writer.write_all(&2u16.to_le_bytes())?; // major
    writer.write_all(&4u16.to_le_bytes())?; // minor
    writer.write_all(&0i32.to_le_bytes())?; // thiszone
    writer.write_all(&0u32.to_le_bytes())?; // sigfigs
    writer.write_all(&65_535u32.to_le_bytes())?; // snaplen
    writer.write_all(&LINKTYPE_RAW.to_le_bytes())?;

    for pkt in packets {
        let mut frame = Vec::with_capacity(40);
        // IPv4 header (20 bytes, no options).
        frame.push(0x45);
        frame.push(0);
        frame.extend_from_slice(&pkt.ip_len.to_be_bytes());
        frame.extend_from_slice(&pkt.ip_id.to_be_bytes());
        frame.extend_from_slice(&pkt.frag_offset.to_be_bytes());
        frame.push(pkt.ttl);
        frame.push(pkt.proto);
        frame.extend_from_slice(&[0, 0]); // checksum (unvalidated on read)
        frame.extend_from_slice(&pkt.src.octets());
        frame.extend_from_slice(&pkt.dst.octets());
        match pkt.proto {
            proto::TCP => {
                frame.extend_from_slice(&pkt.sport.to_be_bytes());
                frame.extend_from_slice(&pkt.dport.to_be_bytes());
                frame.extend_from_slice(&[0; 9]); // seq/ack/offset
                frame.push(pkt.tcp_flags);
                frame.extend_from_slice(&[0; 6]); // window/cksum/urg... (pad to 20)
            }
            proto::UDP => {
                frame.extend_from_slice(&pkt.sport.to_be_bytes());
                frame.extend_from_slice(&pkt.dport.to_be_bytes());
                frame.extend_from_slice(&[0, 8, 0, 0]); // length, checksum
            }
            _ => {}
        }

        let ns = pkt.arrival.as_nanos();
        writer.write_all(&((ns / 1_000_000_000) as u32).to_le_bytes())?;
        writer.write_all(&(((ns % 1_000_000_000) / 1_000) as u32).to_le_bytes())?;
        writer.write_all(&(frame.len() as u32).to_le_bytes())?;
        writer.write_all(&pkt.size.max(frame.len() as u32).to_le_bytes())?;
        writer.write_all(&frame)?;
    }
    Ok(())
}

/// Writes `packets` as CSV (one row per packet, header included).
pub fn write_csv<W: Write>(mut writer: W, packets: &[Packet]) -> io::Result<()> {
    writeln!(
        writer,
        "arrival_ns,size,src,dst,sport,dport,proto,ttl,ip_len,ip_id,frag_offset,tcp_flags,class"
    )?;
    for p in packets {
        writeln!(
            writer,
            "{},{},{},{},{},{},{},{},{},{},{},{},{}",
            p.arrival.as_nanos(),
            p.size,
            p.src,
            p.dst,
            p.sport,
            p.dport,
            p.proto,
            p.ttl,
            p.ip_len,
            p.ip_id,
            p.frag_offset,
            p.tcp_flags,
            p.class.0,
        )?;
    }
    Ok(())
}

/// Reads packets from the CSV format produced by [`write_csv`].
pub fn read_csv<R: Read>(reader: R) -> io::Result<Vec<Packet>> {
    let mut content = String::new();
    let mut reader = reader;
    reader.read_to_string(&mut content)?;
    let mut packets = Vec::new();
    for (lineno, line) in content.lines().enumerate() {
        if lineno == 0 || line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 13 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "line {}: expected 13 fields, got {}",
                    lineno + 1,
                    fields.len()
                ),
            ));
        }
        let parse_err =
            |what: &str| io::Error::new(io::ErrorKind::InvalidData, format!("bad {what}"));
        let mut pkt = Packet::new(SimTime::from_nanos(
            fields[0].parse().map_err(|_| parse_err("arrival"))?,
        ))
        .with_size(fields[1].parse().map_err(|_| parse_err("size"))?)
        .with_src(fields[2].parse().map_err(|_| parse_err("src"))?)
        .with_dst(fields[3].parse().map_err(|_| parse_err("dst"))?)
        .with_ports(
            fields[4].parse().map_err(|_| parse_err("sport"))?,
            fields[5].parse().map_err(|_| parse_err("dport"))?,
        )
        .with_proto(fields[6].parse().map_err(|_| parse_err("proto"))?)
        .with_ttl(fields[7].parse().map_err(|_| parse_err("ttl"))?)
        .with_class(ClassId(fields[12].parse().map_err(|_| parse_err("class"))?));
        pkt.ip_len = fields[8].parse().map_err(|_| parse_err("ip_len"))?;
        pkt.ip_id = fields[9].parse().map_err(|_| parse_err("ip_id"))?;
        pkt.frag_offset = fields[10].parse().map_err(|_| parse_err("frag_offset"))?;
        pkt.tcp_flags = fields[11].parse().map_err(|_| parse_err("tcp_flags"))?;
        packets.push(pkt);
    }
    Ok(packets)
}

/// Convenience: a [`VecSource`] over a pcap capture.
pub fn pcap_source<R: Read>(reader: R) -> io::Result<(VecSource, TraceStats)> {
    let (packets, stats) = read_pcap(reader)?;
    Ok((VecSource::new(packets), stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_packets() -> Vec<Packet> {
        (0..50u64)
            .map(|i| {
                let mut p = Packet::new(SimTime::from_micros(i * 100))
                    .with_size(200 + i as u32)
                    .with_src(Ipv4Addr::new(10, 0, 0, (i % 5) as u8 + 1))
                    .with_dst(Ipv4Addr::new(198, 18, 0, 10))
                    .with_ports(1000 + i as u16, 443)
                    .with_proto(if i % 3 == 0 { proto::TCP } else { proto::UDP })
                    .with_ttl(64)
                    .with_class(ClassId((i % 2) as u16));
                p.ip_id = i as u16;
                p.tcp_flags = if i % 3 == 0 { 0x10 } else { 0 };
                p
            })
            .collect()
    }

    #[test]
    fn pcap_round_trip_preserves_headers() {
        let original = sample_packets();
        let mut buf = Vec::new();
        write_pcap(&mut buf, &original).expect("write");
        let (read, stats) = read_pcap(buf.as_slice()).expect("read");
        assert_eq!(stats.parsed, 50);
        assert_eq!(stats.skipped, 0);
        assert_eq!(read.len(), original.len());
        for (a, b) in original.iter().zip(&read) {
            assert_eq!(a.src, b.src);
            assert_eq!(a.dst, b.dst);
            assert_eq!(a.sport, b.sport);
            assert_eq!(a.dport, b.dport);
            assert_eq!(a.proto, b.proto);
            assert_eq!(a.ttl, b.ttl);
            assert_eq!(a.ip_id, b.ip_id);
            assert_eq!(a.tcp_flags, b.tcp_flags);
            // pcap timestamps are microsecond-resolution.
            assert_eq!(a.arrival.as_nanos() / 1_000, b.arrival.as_nanos() / 1_000);
        }
    }

    #[test]
    fn csv_round_trip_is_lossless() {
        let original = sample_packets();
        let mut buf = Vec::new();
        write_csv(&mut buf, &original).expect("write");
        let read = read_csv(buf.as_slice()).expect("read");
        assert_eq!(original, read);
    }

    #[test]
    fn garbage_input_is_rejected() {
        let err = read_pcap(&b"this is not a pcap file at all!!"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let err = read_csv(&b"arrival\n1,2,3\n"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn non_ipv4_records_are_skipped_not_fatal() {
        let mut buf = Vec::new();
        write_pcap(&mut buf, &sample_packets()[..2]).expect("write");
        // Append a record whose payload is IPv6-looking garbage.
        buf.extend_from_slice(&5u32.to_le_bytes()); // ts_sec
        buf.extend_from_slice(&0u32.to_le_bytes()); // ts_usec
        buf.extend_from_slice(&20u32.to_le_bytes()); // incl_len
        buf.extend_from_slice(&20u32.to_le_bytes()); // orig_len
        buf.extend_from_slice(&[0x60; 20]); // version nibble = 6
        let (packets, stats) = read_pcap(buf.as_slice()).expect("read");
        assert_eq!(packets.len(), 2);
        assert_eq!(stats.skipped, 1);
    }

    #[test]
    fn timestamps_are_rebased_to_zero() {
        let mut shifted = sample_packets();
        for p in &mut shifted {
            p.arrival += crate::time::SimDuration::from_secs(1_000);
        }
        let mut buf = Vec::new();
        write_pcap(&mut buf, &shifted).expect("write");
        let (read, _) = read_pcap(buf.as_slice()).expect("read");
        assert_eq!(read[0].arrival, SimTime::ZERO);
    }

    #[test]
    fn pcap_source_feeds_the_engine() {
        use crate::engine::{run, EngineConfig};
        use crate::queue::FifoQueue;
        use crate::switch::SingleQueueSwitch;
        use crate::units::Bandwidth;
        let mut buf = Vec::new();
        write_pcap(&mut buf, &sample_packets()).expect("write");
        let (mut src, _) = pcap_source(buf.as_slice()).expect("read");
        let mut sw = SingleQueueSwitch::new(FifoQueue::new(1_000_000));
        let res = run(
            &mut src,
            &mut sw,
            &EngineConfig::new(Bandwidth::from_mbps(100)),
        );
        assert_eq!(res.arrivals, 50);
        assert_eq!(res.departures, 50);
    }
}
