//! Queueing-delay tracking.
//!
//! The paper argues ACC-Turbo is transparent without congestion and that
//! deprioritization only delays (rather than drops) traffic below the
//! overflow point (§3.2, §10). Verifying that requires per-class delay
//! distributions; [`DelayHistogram`] collects them with bounded memory
//! using logarithmic buckets (≈4% relative resolution).

use crate::packet::ClassId;
use crate::time::SimDuration;

/// Log-bucketed delay histogram.
///
/// Buckets are at 4%-growth boundaries starting from 1 µs, giving ~340
/// buckets up to an hour of delay — enough resolution for percentile
/// queries while staying a few kilobytes per class.
#[derive(Debug, Clone)]
pub struct DelayHistogram {
    /// `counts[class][bucket]`.
    counts: Vec<Vec<u64>>,
    totals: Vec<u64>,
}

const BASE_NS: f64 = 1_000.0; // 1 µs
const GROWTH: f64 = 1.04;
const NUM_BUCKETS: usize = 384;

fn bucket_of(d: SimDuration) -> usize {
    let ns = d.as_nanos() as f64;
    if ns <= BASE_NS {
        return 0;
    }
    let b = (ns / BASE_NS).ln() / GROWTH.ln();
    (b as usize + 1).min(NUM_BUCKETS - 1)
}

fn bucket_upper_bound(b: usize) -> SimDuration {
    SimDuration::from_nanos((BASE_NS * GROWTH.powi(b as i32)) as u64)
}

impl DelayHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        DelayHistogram {
            counts: Vec::new(),
            totals: Vec::new(),
        }
    }

    /// Records a delay sample for `class`.
    pub fn record(&mut self, class: ClassId, delay: SimDuration) {
        let idx = class.0 as usize;
        if self.counts.len() <= idx {
            self.counts.resize(idx + 1, vec![0; NUM_BUCKETS]);
            self.totals.resize(idx + 1, 0);
        }
        self.counts[idx][bucket_of(delay)] += 1;
        self.totals[idx] += 1;
    }

    /// Number of samples recorded for `class`.
    pub fn samples(&self, class: ClassId) -> u64 {
        self.totals.get(class.0 as usize).copied().unwrap_or(0)
    }

    /// The `p`-th percentile (0–100) of `class`'s delays, as the upper
    /// bound of the bucket containing it. `None` without samples.
    pub fn percentile(&self, class: ClassId, p: f64) -> Option<SimDuration> {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        let idx = class.0 as usize;
        let total = *self.totals.get(idx)?;
        if total == 0 {
            return None;
        }
        let target = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &c) in self.counts[idx].iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(bucket_upper_bound(b));
            }
        }
        Some(bucket_upper_bound(NUM_BUCKETS - 1))
    }

    /// Mean delay of `class` (bucket upper bounds weighted by counts).
    pub fn mean(&self, class: ClassId) -> Option<SimDuration> {
        let idx = class.0 as usize;
        let total = *self.totals.get(idx)?;
        if total == 0 {
            return None;
        }
        let sum: f64 = self.counts[idx]
            .iter()
            .enumerate()
            .map(|(b, &c)| c as f64 * bucket_upper_bound(b).as_nanos() as f64)
            .sum();
        Some(SimDuration::from_nanos((sum / total as f64) as u64))
    }
}

impl Default for DelayHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_a_uniform_ramp() {
        let mut h = DelayHistogram::new();
        for ms in 1..=1000u64 {
            h.record(ClassId::BENIGN, SimDuration::from_millis(ms));
        }
        let p50 = h.percentile(ClassId::BENIGN, 50.0).expect("samples");
        let p99 = h.percentile(ClassId::BENIGN, 99.0).expect("samples");
        // Log buckets give ~4% resolution.
        assert!((p50.as_secs_f64() - 0.5).abs() / 0.5 < 0.08, "p50 {p50}");
        assert!((p99.as_secs_f64() - 0.99).abs() / 0.99 < 0.08, "p99 {p99}");
        assert!(p99 > p50);
    }

    #[test]
    fn classes_are_independent() {
        let mut h = DelayHistogram::new();
        h.record(ClassId::BENIGN, SimDuration::from_millis(1));
        h.record(ClassId(1), SimDuration::from_secs(1));
        let benign = h.percentile(ClassId::BENIGN, 50.0).expect("samples");
        let attack = h.percentile(ClassId(1), 50.0).expect("samples");
        assert!(attack.as_nanos() > 100 * benign.as_nanos());
        assert_eq!(h.samples(ClassId::BENIGN), 1);
        assert_eq!(h.samples(ClassId(2)), 0);
    }

    #[test]
    fn tiny_delays_land_in_the_first_bucket() {
        let mut h = DelayHistogram::new();
        h.record(ClassId::BENIGN, SimDuration::from_nanos(10));
        let p = h.percentile(ClassId::BENIGN, 100.0).expect("samples");
        assert!(p.as_nanos() <= 1_000);
    }

    #[test]
    fn empty_class_has_no_percentile() {
        let h = DelayHistogram::new();
        assert!(h.percentile(ClassId::BENIGN, 50.0).is_none());
        assert!(h.mean(ClassId::BENIGN).is_none());
    }

    #[test]
    fn mean_is_between_min_and_max() {
        let mut h = DelayHistogram::new();
        h.record(ClassId::BENIGN, SimDuration::from_millis(10));
        h.record(ClassId::BENIGN, SimDuration::from_millis(1000));
        let mean = h.mean(ClassId::BENIGN).expect("samples").as_secs_f64();
        assert!((0.01..=1.1).contains(&mean), "mean {mean}");
    }
}
