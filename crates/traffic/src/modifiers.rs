//! Source adapters that perturb header fields.
//!
//! [`SpreadSource`] gives an otherwise-uniform packet train controlled
//! header diversity (e.g. spreading a CBR aggregate's destinations over a
//! /24 so prefix-based inference has something to aggregate), and
//! [`MapSource`] applies an arbitrary deterministic rewrite.

use accturbo_netsim::{Packet, PacketSource};
use accturbo_prng::{Rng, SeedableRng, StdRng};

/// Which fields to randomize, and over what ranges.
#[derive(Debug, Clone, Default)]
pub struct Spread {
    /// Randomize the last `dst_low_bits` bits of the destination address.
    pub dst_low_bits: u8,
    /// Randomize the last `src_low_bits` bits of the source address.
    pub src_low_bits: u8,
    /// Randomize the source port within this range (inclusive).
    pub sport: Option<(u16, u16)>,
    /// Randomize the destination port within this range (inclusive).
    pub dport: Option<(u16, u16)>,
}

impl Spread {
    /// Spread destinations over a /24 (randomize the last address byte).
    pub fn dst_slash24() -> Self {
        Spread {
            dst_low_bits: 8,
            ..Spread::default()
        }
    }
}

/// Wraps a source and randomizes selected header fields per packet.
pub struct SpreadSource<S: PacketSource> {
    inner: S,
    spread: Spread,
    rng: StdRng,
}

impl<S: PacketSource> SpreadSource<S> {
    /// Wraps `inner` with the given spread, seeded deterministically.
    pub fn new(inner: S, spread: Spread, seed: u64) -> Self {
        assert!(spread.dst_low_bits <= 32, "dst_low_bits > 32");
        assert!(spread.src_low_bits <= 32, "src_low_bits > 32");
        SpreadSource {
            inner,
            spread,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn randomize_low_bits(addr: u32, bits: u8, rng: &mut StdRng) -> u32 {
        if bits == 0 {
            return addr;
        }
        let mask = if bits >= 32 {
            u32::MAX
        } else {
            (1u32 << bits) - 1
        };
        (addr & !mask) | (rng.gen::<u32>() & mask)
    }
}

impl<S: PacketSource> PacketSource for SpreadSource<S> {
    fn next_packet(&mut self) -> Option<Packet> {
        let mut pkt = self.inner.next_packet()?;
        if self.spread.dst_low_bits > 0 {
            let v = Self::randomize_low_bits(
                u32::from(pkt.dst),
                self.spread.dst_low_bits,
                &mut self.rng,
            );
            pkt.dst = v.into();
        }
        if self.spread.src_low_bits > 0 {
            let v = Self::randomize_low_bits(
                u32::from(pkt.src),
                self.spread.src_low_bits,
                &mut self.rng,
            );
            pkt.src = v.into();
        }
        if let Some((lo, hi)) = self.spread.sport {
            pkt.sport = self.rng.gen_range(lo..=hi);
        }
        if let Some((lo, hi)) = self.spread.dport {
            pkt.dport = self.rng.gen_range(lo..=hi);
        }
        Some(pkt)
    }
}

/// Wraps a source and applies an arbitrary per-packet rewrite.
pub struct MapSource<S: PacketSource, F: FnMut(&mut Packet)> {
    inner: S,
    f: F,
}

impl<S: PacketSource, F: FnMut(&mut Packet)> MapSource<S, F> {
    /// Wraps `inner`, applying `f` to every emitted packet. `f` must not
    /// change arrival times (ordering is the inner source's contract).
    pub fn new(inner: S, f: F) -> Self {
        MapSource { inner, f }
    }
}

impl<S: PacketSource, F: FnMut(&mut Packet)> PacketSource for MapSource<S, F> {
    fn next_packet(&mut self) -> Option<Packet> {
        let mut pkt = self.inner.next_packet()?;
        (self.f)(&mut pkt);
        Some(pkt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cbr::{CbrSource, FlowTemplate};
    use accturbo_netsim::{ClassId, SimTime};
    use std::net::Ipv4Addr;

    fn cbr() -> CbrSource {
        CbrSource::new(
            FlowTemplate::udp(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(198, 18, 3, 0),
                1000,
                80,
                ClassId(1),
            ),
            8_000_000,
            SimTime::ZERO,
            SimTime::from_secs(1),
        )
    }

    #[test]
    fn dst_spread_stays_in_prefix() {
        let mut src = SpreadSource::new(cbr(), Spread::dst_slash24(), 1);
        let pkts: Vec<_> = std::iter::from_fn(|| src.next_packet()).collect();
        let dsts: std::collections::HashSet<_> = pkts.iter().map(|p| p.dst).collect();
        assert!(dsts.len() > 50, "only {} dsts", dsts.len());
        assert!(pkts.iter().all(|p| p.dst.octets()[..3] == [198, 18, 3]));
    }

    #[test]
    fn sport_spread_respects_range() {
        let spread = Spread {
            sport: Some((2000, 2100)),
            ..Spread::default()
        };
        let mut src = SpreadSource::new(cbr(), spread, 2);
        let pkts: Vec<_> = std::iter::from_fn(|| src.next_packet()).collect();
        assert!(pkts.iter().all(|p| (2000..=2100).contains(&p.sport)));
        let sports: std::collections::HashSet<_> = pkts.iter().map(|p| p.sport).collect();
        assert!(sports.len() > 20);
    }

    #[test]
    fn zero_spread_is_identity() {
        let mut plain = cbr();
        let mut wrapped = SpreadSource::new(cbr(), Spread::default(), 3);
        while let Some(a) = plain.next_packet() {
            let b = wrapped.next_packet().unwrap();
            assert_eq!(a, b);
        }
        assert!(wrapped.next_packet().is_none());
    }

    #[test]
    fn map_source_rewrites() {
        let mut src = MapSource::new(cbr(), |p| p.ttl = 1);
        let pkts: Vec<_> = std::iter::from_fn(|| src.next_packet()).collect();
        assert!(pkts.iter().all(|p| p.ttl == 1));
    }

    #[test]
    fn spread_preserves_timing() {
        let mut plain = cbr();
        let mut wrapped = SpreadSource::new(cbr(), Spread::dst_slash24(), 4);
        while let Some(a) = plain.next_packet() {
            let b = wrapped.next_packet().unwrap();
            assert_eq!(a.arrival, b.arrival);
        }
    }
}
