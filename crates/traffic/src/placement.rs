//! Leaf placement for multi-switch topologies.
//!
//! A topology run needs every arriving packet assigned to an ingress
//! leaf. Placement must be (a) a pure function of the packet — the same
//! workload stream places identically regardless of topology shape or
//! job count — and (b) flow-sticky, so a flow's packets share a path and
//! per-leaf rate shaping makes sense. Hashing the source address gives
//! both: benign flows spread across all leaves, while attack traffic
//! (ground-truth `class != 0`) is confined to a configurable attacker
//! subset, which is how the topology figure dials attack dispersion.

use accturbo_netsim::Packet;

/// Maps packets to leaf ordinals (`0..leaves`) by source-address hash.
#[derive(Debug, Clone)]
pub struct LeafPlacement {
    leaves: usize,
    /// Leaf ordinals that host attack sources; empty = attackers spread
    /// over all leaves like everyone else.
    attackers: Vec<usize>,
}

/// FNV-1a, the same cheap deterministic hash used by the sketch layers.
fn fnv1a(ip: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in ip.to_be_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl LeafPlacement {
    /// A placement over `leaves` ingress nodes. `attackers` confines
    /// ground-truth attack classes to those leaf ordinals (`None` or
    /// empty = no confinement). Out-of-range ordinals panic.
    pub fn new(leaves: usize, attackers: Option<&[usize]>) -> Self {
        assert!(leaves > 0, "placement needs at least one leaf");
        let attackers = attackers.unwrap_or(&[]).to_vec();
        for &a in &attackers {
            assert!(a < leaves, "attacker leaf {a} out of range (< {leaves})");
        }
        LeafPlacement { leaves, attackers }
    }

    /// The leaf ordinal for `pkt`.
    pub fn place(&self, pkt: &Packet) -> usize {
        let h = fnv1a(u32::from(pkt.src));
        if pkt.class.is_attack() && !self.attackers.is_empty() {
            self.attackers[(h % self.attackers.len() as u64) as usize]
        } else {
            (h % self.leaves as u64) as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accturbo_netsim::{ClassId, SimTime};
    use std::net::Ipv4Addr;

    fn pkt(src: [u8; 4], class: u16) -> Packet {
        Packet::new(SimTime::ZERO)
            .with_src(Ipv4Addr::from(src))
            .with_class(ClassId(class))
    }

    #[test]
    fn placement_is_flow_sticky_and_in_range() {
        let p = LeafPlacement::new(4, None);
        for i in 0..64u8 {
            let a = p.place(&pkt([10, 0, 0, i], 0));
            let b = p.place(&pkt([10, 0, 0, i], 0));
            assert_eq!(a, b, "same source must always land on the same leaf");
            assert!(a < 4);
        }
    }

    #[test]
    fn benign_traffic_uses_every_leaf() {
        let p = LeafPlacement::new(4, Some(&[0]));
        let mut seen = [false; 4];
        for i in 0..255u8 {
            seen[p.place(&pkt([192, 168, i, 1], 0))] = true;
        }
        assert_eq!(seen, [true; 4], "benign sources must spread over leaves");
    }

    #[test]
    fn attack_traffic_is_confined_to_the_attacker_set() {
        let p = LeafPlacement::new(8, Some(&[2, 5]));
        for i in 0..255u8 {
            let leaf = p.place(&pkt([198, 18, i, 7], 1));
            assert!(leaf == 2 || leaf == 5, "attack leaked to leaf {leaf}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_attacker_panics() {
        LeafPlacement::new(2, Some(&[2]));
    }
}
