//! Pulse-wave attack composition.
//!
//! A pulse-wave DDoS attack is a series of short, high-rate pulses, each
//! potentially using a different attack vector, destination, and port
//! (paper §1, §3.1). This module composes [`AttackSource`] streams into a
//! pulse train; [`PulseWave::fig6`] builds the exact scenario of the
//! paper's hardware evaluation (§7.1): four UDP-flood pulses of 10 s with
//! 10 s interleaves, each targeting a different IP within a common subnet
//! and a different port.

use crate::vectors::{AttackConfig, AttackSource, AttackVector};
use accturbo_netsim::{ClassId, MergedSource, PacketSource, SimDuration, SimTime};
use std::net::Ipv4Addr;

/// One pulse of a pulse-wave attack.
#[derive(Debug, Clone)]
pub struct PulseSpec {
    /// Attack vector of this pulse.
    pub vector: AttackVector,
    /// Pulse start.
    pub start: SimTime,
    /// Pulse duration.
    pub duration: SimDuration,
    /// Pulse rate in bits per second.
    pub rate_bps: u64,
    /// Destination address of this pulse.
    pub victim: Ipv4Addr,
    /// Destination port of this pulse (fixed per pulse).
    pub dport: u16,
    /// Ground-truth class for the pulse's packets.
    pub class: ClassId,
}

/// A composed pulse-wave attack.
#[derive(Debug, Clone)]
pub struct PulseWave {
    /// The pulses, in start-time order.
    pub pulses: Vec<PulseSpec>,
    /// Base RNG seed; pulse `i` uses `seed + i`.
    pub seed: u64,
}

impl PulseWave {
    /// Builds the paper's Fig. 6 pulse train: `n` UDP-flood pulses of
    /// `on` seconds separated by `off` seconds of silence, starting at
    /// `first_start`, each targeting a distinct IP in `subnet` (a /24)
    /// and a distinct destination port.
    pub fn fig6(
        n: usize,
        first_start: SimTime,
        on: SimDuration,
        off: SimDuration,
        rate_bps: u64,
        subnet: Ipv4Addr,
        seed: u64,
    ) -> Self {
        let o = subnet.octets();
        let pulses = (0..n)
            .map(|i| PulseSpec {
                vector: AttackVector::UdpFlood,
                start: first_start + (on + off) * i as u64,
                duration: on,
                rate_bps,
                victim: Ipv4Addr::new(o[0], o[1], o[2], 10 + i as u8),
                dport: 3000 + 7 * i as u16,
                class: ClassId(1 + i as u16),
            })
            .collect();
        PulseWave { pulses, seed }
    }

    /// Materializes the pulse train as a single time-ordered source.
    pub fn into_source(self) -> MergedSource {
        let seed = self.seed;
        let sources: Vec<Box<dyn PacketSource>> = self
            .pulses
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                // Each pulse is one UDP flood aimed at one IP and one port
                // (paper §7.1) — a single flow, as in the §7.2 base attack.
                let cfg = AttackConfig::new(
                    p.vector,
                    p.rate_bps,
                    p.start,
                    p.start + p.duration,
                    p.class,
                    seed.wrapping_add(i as u64),
                )
                .with_victim(p.victim, p.dport)
                .with_single_flow()
                .with_fixed_dport(p.dport);
                Box::new(AttackSource::new(cfg)) as Box<dyn PacketSource>
            })
            .collect();
        MergedSource::new(sources)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_pulse_layout() {
        let wave = PulseWave::fig6(
            4,
            SimTime::from_secs(10),
            SimDuration::from_secs(10),
            SimDuration::from_secs(10),
            1_000_000,
            Ipv4Addr::new(198, 18, 5, 0),
            1,
        );
        assert_eq!(wave.pulses.len(), 4);
        assert_eq!(wave.pulses[0].start, SimTime::from_secs(10));
        assert_eq!(wave.pulses[1].start, SimTime::from_secs(30));
        assert_eq!(wave.pulses[3].start, SimTime::from_secs(70));
        // Distinct victims within the subnet, distinct ports, distinct classes.
        let victims: std::collections::HashSet<_> = wave.pulses.iter().map(|p| p.victim).collect();
        let ports: std::collections::HashSet<_> = wave.pulses.iter().map(|p| p.dport).collect();
        let classes: std::collections::HashSet<_> = wave.pulses.iter().map(|p| p.class).collect();
        assert_eq!(victims.len(), 4);
        assert_eq!(ports.len(), 4);
        assert_eq!(classes.len(), 4);
        assert!(wave
            .pulses
            .iter()
            .all(|p| p.victim.octets()[..3] == [198, 18, 5]));
    }

    #[test]
    fn pulses_are_silent_in_the_gaps() {
        let mut src = PulseWave::fig6(
            2,
            SimTime::from_secs(1),
            SimDuration::from_secs(1),
            SimDuration::from_secs(1),
            2_000_000,
            Ipv4Addr::new(198, 18, 5, 0),
            3,
        )
        .into_source();
        let pkts: Vec<_> = std::iter::from_fn(|| src.next_packet()).collect();
        assert!(!pkts.is_empty());
        for p in &pkts {
            let s = p.arrival.as_secs_f64();
            assert!(
                (1.0..2.0).contains(&s) || (3.0..4.0).contains(&s),
                "packet at {s} outside any pulse"
            );
        }
    }

    #[test]
    fn each_pulse_keeps_its_port_and_victim() {
        let wave = PulseWave::fig6(
            3,
            SimTime::ZERO,
            SimDuration::from_secs(1),
            SimDuration::from_secs(1),
            1_000_000,
            Ipv4Addr::new(198, 18, 5, 0),
            5,
        );
        let specs = wave.pulses.clone();
        let mut src = wave.into_source();
        while let Some(p) = src.next_packet() {
            let spec = specs
                .iter()
                .find(|s| s.class == p.class)
                .expect("class maps to a pulse");
            assert_eq!(p.dst, spec.victim);
            assert_eq!(p.dport, spec.dport);
        }
    }
}
