//! # accturbo-traffic
//!
//! Workload generators for the ACC-Turbo reproduction: CAIDA-like benign
//! background, per-vector DDoS attack templates, pulse-wave composition,
//! the classic ACC experiment workloads (Figs. 2/3), and a synthetic
//! CICDDoS-2019-like attack day (see DESIGN.md §1 for the substitution
//! rationale). All generators implement
//! [`accturbo_netsim::PacketSource`], are lazily evaluated, and are fully
//! deterministic given their seed.

#![deny(missing_docs)]

pub mod background;
pub mod cbr;
pub mod cicddos;
pub mod modifiers;
pub mod placement;
pub mod pulse;
pub mod scenarios;
pub mod vectors;
pub mod workloads;

pub use background::{BackgroundConfig, BackgroundSource};
pub use cbr::{CbrSource, FlowTemplate, RampSource, RateStep};
pub use cicddos::{CicDdosConfig, Episode};
pub use modifiers::{MapSource, Spread, SpreadSource};
pub use placement::LeafPlacement;
pub use pulse::{PulseSpec, PulseWave};
pub use vectors::{AttackConfig, AttackSource, AttackVector};
pub use workloads::{AdversarialScenario, FloodVariation, PulseAttackConfig};
