//! Constant- and variable-bit-rate aggregates.
//!
//! The ACC experiments (paper Fig. 2/3) schedule four constant-bit-rate
//! aggregates plus one variable-rate "attack" aggregate over a bottleneck.
//! [`CbrSource`] produces a fixed-rate packet train; [`RampSource`]
//! produces a piecewise-linear rate profile (the attack of Fig. 2 ramps up
//! at t=13 s and back down at t=25 s).

use accturbo_netsim::{ClassId, Packet, PacketSource, SimDuration, SimTime};
use std::net::Ipv4Addr;

/// Header template stamped onto every generated packet.
#[derive(Debug, Clone)]
pub struct FlowTemplate {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Source port.
    pub sport: u16,
    /// Destination port.
    pub dport: u16,
    /// IP protocol.
    pub proto: u8,
    /// Time-to-live.
    pub ttl: u8,
    /// Packet size in bytes.
    pub size: u32,
    /// Ground-truth class.
    pub class: ClassId,
}

impl FlowTemplate {
    /// A UDP flow of 1000-byte packets with the given endpoints and class.
    pub fn udp(src: Ipv4Addr, dst: Ipv4Addr, sport: u16, dport: u16, class: ClassId) -> Self {
        FlowTemplate {
            src,
            dst,
            sport,
            dport,
            proto: accturbo_netsim::packet::proto::UDP,
            ttl: 64,
            size: 1000,
            class,
        }
    }

    /// Sets the packet size.
    pub fn with_size(mut self, size: u32) -> Self {
        self.size = size;
        self
    }

    fn stamp(&self, arrival: SimTime) -> Packet {
        Packet::new(arrival)
            .with_size(self.size)
            .with_src(self.src)
            .with_dst(self.dst)
            .with_ports(self.sport, self.dport)
            .with_proto(self.proto)
            .with_ttl(self.ttl)
            .with_class(self.class)
    }
}

/// A constant-bit-rate packet train between `start` and `end`.
#[derive(Debug, Clone)]
pub struct CbrSource {
    template: FlowTemplate,
    gap: SimDuration,
    next: SimTime,
    end: SimTime,
}

impl CbrSource {
    /// Creates a CBR source at `rate_bps` from `start` to `end`.
    ///
    /// Panics when the rate or window is degenerate.
    pub fn new(template: FlowTemplate, rate_bps: u64, start: SimTime, end: SimTime) -> Self {
        assert!(rate_bps > 0, "CBR rate must be positive");
        assert!(end > start, "CBR window must be non-empty");
        let gap = SimDuration::from_nanos(
            (template.size as u128 * 8 * 1_000_000_000 / rate_bps as u128) as u64,
        );
        assert!(!gap.is_zero(), "CBR rate too high for packet size");
        CbrSource {
            template,
            gap,
            next: start,
            end,
        }
    }
}

impl PacketSource for CbrSource {
    fn next_packet(&mut self) -> Option<Packet> {
        if self.next >= self.end {
            return None;
        }
        let pkt = self.template.stamp(self.next);
        self.next += self.gap;
        Some(pkt)
    }
}

/// One segment of a piecewise-constant rate profile.
#[derive(Debug, Clone, Copy)]
pub struct RateStep {
    /// Segment start time.
    pub at: SimTime,
    /// Rate from `at` until the next step, in bits per second (0 = silent).
    pub rate_bps: u64,
}

/// A variable-rate packet train following a piecewise-constant profile.
#[derive(Debug, Clone)]
pub struct RampSource {
    template: FlowTemplate,
    steps: Vec<RateStep>,
    next: SimTime,
    end: SimTime,
}

impl RampSource {
    /// Creates a source following `steps` (sorted by time) until `end`.
    ///
    /// Panics when `steps` is empty or unsorted.
    pub fn new(template: FlowTemplate, steps: Vec<RateStep>, end: SimTime) -> Self {
        assert!(
            !steps.is_empty(),
            "rate profile must have at least one step"
        );
        assert!(
            steps.windows(2).all(|w| w[0].at < w[1].at),
            "rate profile must be strictly time-sorted"
        );
        let next = steps[0].at;
        RampSource {
            template,
            steps,
            next,
            end,
        }
    }

    /// The rate in force at time `t`.
    fn rate_at(&self, t: SimTime) -> u64 {
        self.steps
            .iter()
            .rev()
            .find(|s| s.at <= t)
            .map(|s| s.rate_bps)
            .unwrap_or(0)
    }

    /// Start of the first segment after `t` with a nonzero rate.
    fn next_active(&self, t: SimTime) -> Option<SimTime> {
        self.steps
            .iter()
            .find(|s| s.at > t && s.rate_bps > 0)
            .map(|s| s.at)
    }
}

impl PacketSource for RampSource {
    fn next_packet(&mut self) -> Option<Packet> {
        loop {
            if self.next >= self.end {
                return None;
            }
            let rate = self.rate_at(self.next);
            if rate == 0 {
                // Jump to the next active segment.
                self.next = self.next_active(self.next)?;
                continue;
            }
            let pkt = self.template.stamp(self.next);
            let gap = SimDuration::from_nanos(
                (self.template.size as u128 * 8 * 1_000_000_000 / rate as u128) as u64,
            );
            self.next += gap.max(SimDuration::from_nanos(1));
            return Some(pkt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn template(class: u16) -> FlowTemplate {
        FlowTemplate::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 1, 1),
            1000,
            80,
            ClassId(class),
        )
    }

    #[test]
    fn cbr_hits_target_rate() {
        // 1 Mbps of 1000-byte packets for 1 s = 125 packets.
        let mut src = CbrSource::new(template(1), 1_000_000, SimTime::ZERO, SimTime::from_secs(1));
        let pkts: Vec<Packet> = std::iter::from_fn(|| src.next_packet()).collect();
        assert_eq!(pkts.len(), 125);
        assert!(pkts.windows(2).all(|w| w[0].arrival < w[1].arrival));
    }

    #[test]
    fn cbr_respects_window() {
        let mut src = CbrSource::new(
            template(1),
            1_000_000,
            SimTime::from_secs(2),
            SimTime::from_secs(3),
        );
        let pkts: Vec<Packet> = std::iter::from_fn(|| src.next_packet()).collect();
        assert!(pkts.first().unwrap().arrival >= SimTime::from_secs(2));
        assert!(pkts.last().unwrap().arrival < SimTime::from_secs(3));
    }

    #[test]
    fn ramp_changes_rate_at_steps() {
        // 1 Mbps for 1 s, then 4 Mbps for 1 s.
        let mut src = RampSource::new(
            template(5),
            vec![
                RateStep {
                    at: SimTime::ZERO,
                    rate_bps: 1_000_000,
                },
                RateStep {
                    at: SimTime::from_secs(1),
                    rate_bps: 4_000_000,
                },
            ],
            SimTime::from_secs(2),
        );
        let pkts: Vec<Packet> = std::iter::from_fn(|| src.next_packet()).collect();
        let first_second = pkts
            .iter()
            .filter(|p| p.arrival < SimTime::from_secs(1))
            .count();
        let second_second = pkts.len() - first_second;
        assert_eq!(first_second, 125);
        assert_eq!(second_second, 500);
    }

    #[test]
    fn ramp_zero_rate_silences_output() {
        let mut src = RampSource::new(
            template(5),
            vec![
                RateStep {
                    at: SimTime::ZERO,
                    rate_bps: 1_000_000,
                },
                RateStep {
                    at: SimTime::from_secs(1),
                    rate_bps: 0,
                },
                RateStep {
                    at: SimTime::from_secs(2),
                    rate_bps: 1_000_000,
                },
            ],
            SimTime::from_secs(3),
        );
        let pkts: Vec<Packet> = std::iter::from_fn(|| src.next_packet()).collect();
        assert!(pkts
            .iter()
            .all(|p| p.arrival < SimTime::from_secs(1) || p.arrival >= SimTime::from_secs(2)));
        assert_eq!(pkts.len(), 250);
    }

    #[test]
    fn ramp_ending_in_silence_terminates() {
        let mut src = RampSource::new(
            template(5),
            vec![
                RateStep {
                    at: SimTime::ZERO,
                    rate_bps: 1_000_000,
                },
                RateStep {
                    at: SimTime::from_secs(1),
                    rate_bps: 0,
                },
            ],
            SimTime::from_secs(10),
        );
        let pkts: Vec<Packet> = std::iter::from_fn(|| src.next_packet()).collect();
        assert_eq!(pkts.len(), 125);
    }

    #[test]
    #[should_panic(expected = "strictly time-sorted")]
    fn ramp_rejects_unsorted_steps() {
        let _ = RampSource::new(
            template(5),
            vec![
                RateStep {
                    at: SimTime::from_secs(1),
                    rate_bps: 1,
                },
                RateStep {
                    at: SimTime::ZERO,
                    rate_bps: 1,
                },
            ],
            SimTime::from_secs(2),
        );
    }
}
