//! Composable experiment workloads (the `WorkloadSpec` generators).
//!
//! Every workload the evaluation harness runs — beyond the classic ACC
//! scenarios of [`crate::scenarios`] — lives here as a plain builder
//! returning a [`PacketSource`], so the experiments crate composes
//! scenarios declaratively instead of re-encoding rates and seeds per
//! figure module. Seed arithmetic is part of each workload's identity:
//! sub-sources derive their streams from fixed offsets of the workload
//! seed, so a workload at a given `(secs, seed)` is byte-stable across
//! refactors.

use crate::{
    AttackConfig, AttackSource, AttackVector, BackgroundConfig, BackgroundSource, CbrSource,
    FlowTemplate, MapSource, PulseWave, Spread, SpreadSource,
};
use accturbo_netsim::{ClassId, MergedSource, PacketSource, SimDuration, SimTime};
use accturbo_prng::{Rng, SeedableRng, StdRng};
use std::net::Ipv4Addr;

/// Scaled CAIDA-like background rate shared by the §7 workloads (the
/// paper's replay carried a bit under the bottleneck's capacity).
pub const EXPERIMENT_BACKGROUND_BPS: u64 = 7_000_000;
/// Scaled single-flow flood rate of the Table 3 / Fig. 7 attacks.
pub const FLOOD_ATTACK_BPS: u64 = 60_000_000;
/// Scaled Fig. 6 pulse peak (the paper's pulses peak at ≈40.8 Gbps).
pub const FIG6_PULSE_BPS: u64 = 40_000_000;
/// Attack start of the Fig. 7 reaction-time flood (seconds).
pub const REACTION_ATTACK_START_S: u64 = 20;

/// The attack variations of Table 3's rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FloodVariation {
    /// Background only.
    NoAttack,
    /// Single-flow UDP flood (all packets share the 5-tuple).
    SingleFlow,
    /// Carpet bombing: random destination within the victim /24.
    CarpetBombing,
    /// Full source spoofing.
    SourceSpoofing,
}

impl FloodVariation {
    /// All rows, in the paper's order.
    pub const ALL: [FloodVariation; 4] = [
        FloodVariation::NoAttack,
        FloodVariation::SingleFlow,
        FloodVariation::CarpetBombing,
        FloodVariation::SourceSpoofing,
    ];

    /// Row label.
    pub fn name(self) -> &'static str {
        match self {
            FloodVariation::NoAttack => "No Attack",
            FloodVariation::SingleFlow => "Single Flow",
            FloodVariation::CarpetBombing => "Carpet Bombing",
            FloodVariation::SourceSpoofing => "Source Spoofing",
        }
    }
}

/// The Table 3 workload: CAIDA-like background plus (unless
/// [`FloodVariation::NoAttack`]) a 60 Mbps UDP flood from t = 5 s,
/// varied per the row.
pub fn flood(variation: FloodVariation, secs: u64, seed: u64) -> MergedSource {
    let end = SimTime::from_secs(secs);
    let mut sources: Vec<Box<dyn PacketSource>> = vec![Box::new(BackgroundSource::new(
        BackgroundConfig::new(EXPERIMENT_BACKGROUND_BPS, SimTime::ZERO, end, seed),
    ))];
    if variation != FloodVariation::NoAttack {
        let mut cfg = AttackConfig::new(
            AttackVector::UdpFlood,
            FLOOD_ATTACK_BPS,
            SimTime::from_secs(5),
            end,
            ClassId(1),
            seed + 1,
        )
        .with_single_flow();
        cfg = match variation {
            FloodVariation::CarpetBombing => cfg.with_carpet_bombing(),
            FloodVariation::SourceSpoofing => cfg.with_source_spoofing(),
            _ => cfg,
        };
        sources.push(Box::new(AttackSource::new(cfg)));
    }
    MergedSource::new(sources)
}

/// The Fig. 6 workload: background + 4 pulses (10 s on / 10 s off)
/// starting at t = 10 s, each targeting a different IP of a common /24.
pub fn fig6_pulses(secs: u64, seed: u64) -> MergedSource {
    let end = SimTime::from_secs(secs);
    let background: Box<dyn PacketSource> = Box::new(BackgroundSource::new(BackgroundConfig::new(
        EXPERIMENT_BACKGROUND_BPS,
        SimTime::ZERO,
        end,
        seed,
    )));
    let wave: Box<dyn PacketSource> = Box::new(
        PulseWave::fig6(
            4,
            SimTime::from_secs(10),
            SimDuration::from_secs(10),
            SimDuration::from_secs(10),
            FIG6_PULSE_BPS,
            Ipv4Addr::new(198, 18, 5, 0),
            seed + 1,
        )
        .into_source(),
    );
    MergedSource::new(vec![background, wave])
}

/// The Fig. 7 reaction-time workload: background for the whole run,
/// single-flow UDP flood from t = 20 s to t = end − 20 s.
pub fn reaction_flood(secs: u64, seed: u64) -> MergedSource {
    let end = SimTime::from_secs(secs);
    let background: Box<dyn PacketSource> = Box::new(BackgroundSource::new(BackgroundConfig::new(
        EXPERIMENT_BACKGROUND_BPS,
        SimTime::ZERO,
        end,
        seed,
    )));
    let attack_end = SimTime::from_secs(secs.saturating_sub(20).max(REACTION_ATTACK_START_S + 1));
    let attack: Box<dyn PacketSource> = Box::new(AttackSource::new(
        AttackConfig::new(
            AttackVector::UdpFlood,
            FLOOD_ATTACK_BPS,
            SimTime::from_secs(REACTION_ATTACK_START_S),
            attack_end,
            ClassId(1),
            seed + 1,
        )
        .with_single_flow(),
    ));
    MergedSource::new(vec![background, attack])
}

/// Background traffic only (the Fig. 7c program-swap panel's workload).
pub fn background_only(secs: u64, seed: u64) -> MergedSource {
    let end = SimTime::from_secs(secs);
    MergedSource::new(vec![Box::new(BackgroundSource::new(BackgroundConfig::new(
        EXPERIMENT_BACKGROUND_BPS,
        SimTime::ZERO,
        end,
        seed,
    ))) as Box<dyn PacketSource>])
}

/// The §9 adversarial scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversarialScenario {
    /// Baseline: a plain single-flow flood (the defense's home turf).
    PlainFlood,
    /// §9.1: every feature randomized per packet.
    PacketLevelEvasion,
    /// §9.1: |C| spread-out low-rate vectors, one per cluster.
    AggregateLevelEvasion,
    /// §9.2: tight high-rate benign + randomized attack.
    Swapping,
    /// §9.2: attack replicates the benign service's signature.
    Imitation,
}

impl AdversarialScenario {
    /// All scenarios, report order.
    pub const ALL: [AdversarialScenario; 5] = [
        AdversarialScenario::PlainFlood,
        AdversarialScenario::PacketLevelEvasion,
        AdversarialScenario::AggregateLevelEvasion,
        AdversarialScenario::Swapping,
        AdversarialScenario::Imitation,
    ];

    /// Row label.
    pub fn name(self) -> &'static str {
        match self {
            AdversarialScenario::PlainFlood => "Plain flood (baseline)",
            AdversarialScenario::PacketLevelEvasion => "Packet-level evasion",
            AdversarialScenario::AggregateLevelEvasion => "Aggregate-level evasion",
            AdversarialScenario::Swapping => "Swapping attack",
            AdversarialScenario::Imitation => "Imitation attack",
        }
    }
}

/// The benign service all §9.2 scenarios target: a tight, high-rate
/// aggregate (one /24, one port band, fixed size).
fn victim_service(end: SimTime, rate_bps: u64, seed: u64) -> Box<dyn PacketSource> {
    let cbr = CbrSource::new(
        FlowTemplate::udp(
            Ipv4Addr::new(95, 10, 1, 1),
            Ipv4Addr::new(203, 7, 44, 0),
            30_000,
            443,
            ClassId::BENIGN,
        )
        .with_size(1200),
        rate_bps,
        SimTime::ZERO,
        end,
    );
    Box::new(SpreadSource::new(
        cbr,
        Spread {
            dst_low_bits: 8,
            sport: Some((30_000, 30_200)),
            ..Spread::default()
        },
        seed + 9,
    ))
}

/// Builds the workload for a §9 adversarial scenario.
pub fn adversarial(scenario: AdversarialScenario, secs: u64, seed: u64) -> MergedSource {
    let end = SimTime::from_secs(secs);
    let start = SimTime::from_secs(5);
    let mut sources: Vec<Box<dyn PacketSource>> = vec![Box::new(BackgroundSource::new(
        BackgroundConfig::new(5_000_000, SimTime::ZERO, end, seed),
    ))];
    match scenario {
        AdversarialScenario::PlainFlood => {
            sources.push(Box::new(AttackSource::new(
                AttackConfig::new(
                    AttackVector::UdpFlood,
                    40_000_000,
                    start,
                    end,
                    ClassId(1),
                    seed + 1,
                )
                .with_single_flow(),
            )));
        }
        AdversarialScenario::PacketLevelEvasion => {
            // Randomize *everything*: source, destination, both ports,
            // size, TTL — nothing left to correlate on.
            let flood = AttackSource::new(
                AttackConfig::new(
                    AttackVector::UdpFlood,
                    40_000_000,
                    start,
                    end,
                    ClassId(1),
                    seed + 1,
                )
                .with_source_spoofing(),
            );
            let mut rng = StdRng::seed_from_u64(seed + 2);
            sources.push(Box::new(MapSource::new(flood, move |p| {
                p.dst = Ipv4Addr::new(rng.gen(), rng.gen(), rng.gen(), rng.gen());
                p.ttl = rng.gen();
                p.ip_len = rng.gen();
                p.ip_id = rng.gen();
            })));
        }
        AdversarialScenario::AggregateLevelEvasion => {
            // Ten spread-out vectors at 4 Mbps each (same 40 Mbps total),
            // one per cluster slot of the simulation profile.
            for (i, vector) in AttackVector::ALL.iter().enumerate() {
                sources.push(Box::new(AttackSource::new(
                    AttackConfig::new(
                        *vector,
                        4_000_000,
                        start,
                        end,
                        ClassId(1 + i as u16),
                        seed + 10 + i as u64,
                    )
                    .with_victim(Ipv4Addr::new(10 + 20 * i as u8, 50, 7, 9), 4000 + i as u16),
                )));
            }
        }
        AdversarialScenario::Swapping => {
            // Benign = tight 6 Mbps service; attack = randomized 12 Mbps.
            sources.push(victim_service(end, 6_000_000, seed));
            let flood = AttackSource::new(
                AttackConfig::new(
                    AttackVector::UdpFlood,
                    12_000_000,
                    start,
                    end,
                    ClassId(1),
                    seed + 3,
                )
                .with_source_spoofing(),
            );
            let mut rng = StdRng::seed_from_u64(seed + 4);
            sources.push(Box::new(MapSource::new(flood, move |p| {
                p.dst = Ipv4Addr::new(rng.gen(), rng.gen(), rng.gen(), rng.gen());
                p.ttl = rng.gen();
            })));
        }
        AdversarialScenario::Imitation => {
            // The attack replicates the victim service's exact signature.
            sources.push(victim_service(end, 6_000_000, seed));
            let imitation = CbrSource::new(
                FlowTemplate::udp(
                    Ipv4Addr::new(95, 10, 1, 1),
                    Ipv4Addr::new(203, 7, 44, 0),
                    30_000,
                    443,
                    ClassId(1),
                )
                .with_size(1200),
                40_000_000,
                start,
                end,
            );
            sources.push(Box::new(SpreadSource::new(
                imitation,
                Spread {
                    dst_low_bits: 8,
                    sport: Some((30_000, 30_200)),
                    ..Spread::default()
                },
                seed + 5,
            )));
        }
    }
    MergedSource::new(sources)
}

/// The Fig. 11a-supplement "elephant" workload: a *tight* volumetric
/// flood (10 Mbps single flow from t = 5 s) next to a *legitimate
/// high-bandwidth service* (an 11 Mbps spread "CDN" aggregate) plus
/// background. The regime where the ranking algorithm decides the
/// outcome.
///
/// This workload keeps its own calibrated seeds — its regime is the
/// experiment, not the draw — so it takes no seed parameter.
pub fn elephant(secs: u64) -> MergedSource {
    let end = SimTime::from_secs(secs);
    let attack = AttackSource::new(
        AttackConfig::new(
            AttackVector::UdpFlood,
            10_000_000,
            SimTime::from_secs(5),
            end,
            ClassId(1),
            3,
        )
        .with_single_flow(),
    );
    let background =
        BackgroundSource::new(BackgroundConfig::new(8_000_000, SimTime::ZERO, end, 11));
    let cdn = CbrSource::new(
        FlowTemplate::udp(
            Ipv4Addr::new(95, 10, 1, 1),
            Ipv4Addr::new(203, 7, 44, 0),
            30_000,
            443,
            ClassId::BENIGN,
        )
        .with_size(1200),
        11_000_000,
        SimTime::ZERO,
        end,
    );
    let cdn = SpreadSource::new(
        cdn,
        Spread {
            dst_low_bits: 8,
            src_low_bits: 12,
            sport: Some((30_000, 33_000)),
            ..Spread::default()
        },
        7,
    );
    MergedSource::new(vec![
        Box::new(attack) as Box<dyn PacketSource>,
        Box::new(background),
        Box::new(cdn),
    ])
}

/// Attack start of the parameterized pulse workload (seconds). Early —
/// the adversarial search runs short scenarios, and every second before
/// the first pulse is budget the optimizer cannot use.
pub const PULSE_ATTACK_START_S: u64 = 2;
/// Number of discrete rate steps approximating a pulse's linear ramp-up
/// (SNIPPETS #2: `R(t) = R_peak · (t − t0) / T_ramp`).
const PULSE_RAMP_STEPS: u64 = 4;

/// The parameterized pulse-wave attack the adversarial search explores:
/// every knob the optimizer can turn, as plain data. The workload this
/// config builds ([`pulse_attack`]) is background traffic plus a pulse
/// train from t = [`PULSE_ATTACK_START_S`]; pulse `i` fires at
/// `start + i · period`, stays on for `duty · period`, cycles through
/// `vectors`, and (when `ramp > 0`) climbs linearly to `amp_bps` over
/// the first `ramp` of its on-window.
#[derive(Debug, Clone, PartialEq)]
pub struct PulseAttackConfig {
    /// Full pulse cycle (on + off).
    pub period: SimDuration,
    /// On fraction of the cycle, in `(0, 1]` (`1` = continuous flood).
    pub duty: f64,
    /// Peak burst amplitude, bits per second.
    pub amp_bps: u64,
    /// Vector mix: pulse `i` uses `vectors[i % len]` and ground-truth
    /// class `1 + (i % len)`.
    pub vectors: Vec<AttackVector>,
    /// Feature-spreading level: 0 = single flow, 1 = the vector's
    /// natural signature, 2 = carpet bombing, 3 = carpet bombing plus
    /// full source spoofing.
    pub spread: u8,
    /// Per-pulse linear ramp-up time (clamped to the on-window;
    /// zero = square pulses).
    pub ramp: SimDuration,
}

impl Default for PulseAttackConfig {
    /// Fig. 6-flavoured defaults: 2 s square pulses at 50% duty peaking
    /// at the Fig. 6 amplitude, one natural-signature UDP flood.
    fn default() -> Self {
        PulseAttackConfig {
            period: SimDuration::from_secs(2),
            duty: 0.5,
            amp_bps: FIG6_PULSE_BPS,
            vectors: vec![AttackVector::UdpFlood],
            spread: 1,
            ramp: SimDuration::ZERO,
        }
    }
}

/// Builds one attack segment of a pulse at the config's spread level.
fn pulse_segment(
    cfg: &PulseAttackConfig,
    vector: AttackVector,
    rate_bps: u64,
    start: SimTime,
    end: SimTime,
    class: ClassId,
    seed: u64,
) -> AttackSource {
    let mut a = AttackConfig::new(vector, rate_bps.max(1), start, end, class, seed);
    match cfg.spread {
        0 => a = a.with_single_flow(),
        1 => {}
        2 => a = a.with_carpet_bombing(),
        _ => a = a.with_carpet_bombing().with_source_spoofing(),
    }
    AttackSource::new(a)
}

/// The parameterized pulse-wave workload: background at
/// [`EXPERIMENT_BACKGROUND_BPS`] plus the pulse train `cfg` describes.
/// Ramps are discretized into [`PULSE_RAMP_STEPS`] equal-duration rate
/// steps at the midpoint rate of each linear segment. Seed discipline:
/// the background derives from `seed`, pulse `i`'s segment `j` from
/// `seed + 1 + 8·i + j` — byte-stable for a given `(cfg, secs, seed)`.
pub fn pulse_attack(cfg: &PulseAttackConfig, secs: u64, seed: u64) -> MergedSource {
    assert!(
        cfg.duty > 0.0 && cfg.duty <= 1.0,
        "pulse duty must be in (0, 1]"
    );
    assert!(
        !cfg.vectors.is_empty(),
        "pulse vector mix must be non-empty"
    );
    assert!(!cfg.period.is_zero(), "pulse period must be positive");
    let end = SimTime::from_secs(secs);
    let mut sources: Vec<Box<dyn PacketSource>> = vec![Box::new(BackgroundSource::new(
        BackgroundConfig::new(EXPERIMENT_BACKGROUND_BPS, SimTime::ZERO, end, seed),
    ))];
    let start = SimTime::from_secs(PULSE_ATTACK_START_S);
    let on = SimDuration::from_secs_f64(cfg.period.as_secs_f64() * cfg.duty);
    let mut i: u64 = 0;
    loop {
        let t0 = match start.checked_add(cfg.period * i) {
            Some(t) if t < end => t,
            _ => break,
        };
        let vector = cfg.vectors[(i as usize) % cfg.vectors.len()];
        let class = ClassId(1 + (i % cfg.vectors.len() as u64) as u16);
        let seed_base = seed.wrapping_add(1 + 8 * i);
        let ramp = cfg.ramp.min(on);
        let mut cursor = t0;
        if !ramp.is_zero() {
            let step = SimDuration::from_nanos(ramp.as_nanos() / PULSE_RAMP_STEPS);
            if !step.is_zero() {
                for j in 0..PULSE_RAMP_STEPS {
                    let seg_end = cursor.checked_add(step).unwrap_or(end).min(end);
                    if seg_end <= cursor {
                        break;
                    }
                    // Midpoint rate of the j-th linear ramp segment.
                    let frac = (2 * j + 1) as f64 / (2 * PULSE_RAMP_STEPS) as f64;
                    let rate = (cfg.amp_bps as f64 * frac).round() as u64;
                    sources.push(Box::new(pulse_segment(
                        cfg,
                        vector,
                        rate,
                        cursor,
                        seg_end,
                        class,
                        seed_base.wrapping_add(j),
                    )));
                    cursor = seg_end;
                }
            }
        }
        let pulse_end = t0.checked_add(on).unwrap_or(end).min(end);
        if pulse_end > cursor {
            sources.push(Box::new(pulse_segment(
                cfg,
                vector,
                cfg.amp_bps,
                cursor,
                pulse_end,
                class,
                seed_base.wrapping_add(PULSE_RAMP_STEPS),
            )));
        }
        i += 1;
    }
    MergedSource::new(sources)
}

/// Ground-truth class of the pushback scenario's benign service sharing
/// the attacked upstream.
pub const PUSHBACK_SHARED_BENIGN: ClassId = ClassId(1);
/// Benign class on the attack-free upstream.
pub const PUSHBACK_CLEAN_BENIGN: ClassId = ClassId(2);
/// The pushback scenario's attack class.
pub const PUSHBACK_ATTACK: ClassId = ClassId(5);

/// The pushback topology's per-upstream sources: upstream 0 carries a
/// 4 Mbps benign CBR service plus a 40 Mbps UDP flood from t = 3 s;
/// upstream 1 carries a clean 4 Mbps benign CBR service.
pub fn pushback_upstreams(secs: u64, seed: u64) -> Vec<Box<dyn PacketSource>> {
    let end = SimTime::from_secs(secs);
    let shared_benign = CbrSource::new(
        FlowTemplate::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(60, 1, 1, 1),
            5000,
            80,
            PUSHBACK_SHARED_BENIGN,
        ),
        4_000_000,
        SimTime::ZERO,
        end,
    );
    let attack = AttackSource::new(AttackConfig::new(
        AttackVector::UdpFlood,
        40_000_000,
        SimTime::from_secs(3),
        end,
        PUSHBACK_ATTACK,
        seed,
    ));
    let upstream0: Box<dyn PacketSource> = Box::new(MergedSource::new(vec![
        Box::new(shared_benign),
        Box::new(attack),
    ]));
    let clean_benign: Box<dyn PacketSource> = Box::new(CbrSource::new(
        FlowTemplate::udp(
            Ipv4Addr::new(10, 0, 1, 1),
            Ipv4Addr::new(61, 1, 1, 1),
            5001,
            80,
            PUSHBACK_CLEAN_BENIGN,
        ),
        4_000_000,
        SimTime::ZERO,
        end,
    ));
    vec![upstream0, clean_benign]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count(mut src: MergedSource) -> usize {
        let mut n = 0;
        while src.next_packet().is_some() {
            n += 1;
        }
        n
    }

    #[test]
    fn every_workload_yields_traffic() {
        assert!(count(flood(FloodVariation::SingleFlow, 8, 1)) > 0);
        assert!(count(fig6_pulses(12, 1)) > 0);
        assert!(count(reaction_flood(25, 1)) > 0);
        assert!(count(background_only(5, 1)) > 0);
        assert!(count(elephant(8)) > 0);
        for s in AdversarialScenario::ALL {
            assert!(count(adversarial(s, 8, 1)) > 0, "{}", s.name());
        }
        assert_eq!(pushback_upstreams(5, 1).len(), 2);
    }

    #[test]
    fn no_attack_variation_is_background_only() {
        let with = count(flood(FloodVariation::NoAttack, 8, 7));
        let bare: usize = {
            let mut src = BackgroundSource::new(BackgroundConfig::new(
                EXPERIMENT_BACKGROUND_BPS,
                SimTime::ZERO,
                SimTime::from_secs(8),
                7,
            ));
            let mut n = 0;
            while src.next_packet().is_some() {
                n += 1;
            }
            n
        };
        assert_eq!(with, bare);
    }

    #[test]
    fn pulse_attack_yields_traffic_and_is_deterministic() {
        let cfg = PulseAttackConfig::default();
        let a = count(pulse_attack(&cfg, 8, 9));
        let b = count(pulse_attack(&cfg, 8, 9));
        assert!(a > 0);
        assert_eq!(a, b);
    }

    #[test]
    fn pulse_attack_on_time_scales_with_duty() {
        let lo = PulseAttackConfig {
            duty: 0.25,
            ..PulseAttackConfig::default()
        };
        let hi = PulseAttackConfig {
            duty: 1.0,
            ..PulseAttackConfig::default()
        };
        assert!(count(pulse_attack(&hi, 10, 3)) > count(pulse_attack(&lo, 10, 3)));
    }

    #[test]
    fn pulse_attack_cycles_vector_mix_classes() {
        let cfg = PulseAttackConfig {
            vectors: vec![AttackVector::UdpFlood, AttackVector::SynFlood],
            ..PulseAttackConfig::default()
        };
        let mut src = pulse_attack(&cfg, 10, 5);
        let mut classes = std::collections::BTreeSet::new();
        while let Some(p) = src.next_packet() {
            classes.insert(p.class);
        }
        assert!(classes.contains(&ClassId(1)), "first vector's pulses");
        assert!(classes.contains(&ClassId(2)), "second vector's pulses");
    }

    #[test]
    fn pulse_attack_ramp_and_spread_levels_build() {
        for spread in 0..=3u8 {
            let cfg = PulseAttackConfig {
                spread,
                ramp: SimDuration::from_millis(400),
                ..PulseAttackConfig::default()
            };
            assert!(count(pulse_attack(&cfg, 8, 11)) > 0, "spread={spread}");
        }
    }

    #[test]
    fn workloads_are_deterministic_per_seed() {
        let a = count(adversarial(AdversarialScenario::Swapping, 10, 42));
        let b = count(adversarial(AdversarialScenario::Swapping, 10, 42));
        assert_eq!(a, b);
        let c = count(adversarial(AdversarialScenario::Swapping, 10, 43));
        // Different seeds move packet draws; counts may collide but the
        // streams must not be forced equal — just sanity-check both run.
        assert!(c > 0);
    }
}
