//! Canonical workloads of the ACC experiments (paper Figs. 2 and 3).
//!
//! Both scenarios schedule five "aggregates" over a bottleneck link:
//!
//! * **Fig. 2** (the original ACC experiment from Mahajan et al. 2002):
//!   aggregates 1–4 are constant-bit-rate; aggregate 5 is a variable-rate
//!   attack that ramps up at t = 13 s and back down at t = 25 s.
//! * **Fig. 3** (the pulse-wave variant): aggregates 1–4 are CBR summing
//!   to ≈ the link capacity; aggregate 5 is a pulse-wave attack with four
//!   pulses starting at 5, 15, 25 and 35 s, each pulse a *different*
//!   vector (morphing), all labeled as one attack aggregate.
//!
//! Each aggregate targets its own destination /24 (spread over the last
//! byte) so both prefix-based inference (classic ACC) and clustering
//! (ACC-Turbo) have structure to find.

use crate::cbr::{CbrSource, FlowTemplate, RampSource, RateStep};
use crate::modifiers::{Spread, SpreadSource};
use crate::vectors::{AttackConfig, AttackSource, AttackVector};
use accturbo_netsim::{ClassId, MergedSource, PacketSource, SimTime};
use std::net::Ipv4Addr;

/// Total run length of both scenarios, matching the figures' 50 s x-axis.
pub const RUN_SECS: u64 = 50;

/// The ground-truth class of the attack aggregate in both scenarios.
pub const ATTACK_CLASS: ClassId = ClassId(5);

/// The destination /24 network of aggregate `i` (1-based). The five
/// aggregates are distinct traffic types (different services, hosts and
/// paths), so their subnets — like their ports, sizes and TTLs — are well
/// separated in feature space. The attack aggregate (5) sits far from all
/// of them.
pub fn aggregate_subnet(i: u16) -> Ipv4Addr {
    match i {
        1..=4 => Ipv4Addr::new(40 * i as u8, 18, i as u8, 0),
        5 => Ipv4Addr::new(220, 18, 5, 0),
        _ => panic!("aggregate index out of range: {i}"),
    }
}

/// The source-port band of aggregate `i` (narrow for the benign CBR
/// services, wide for the attack).
pub fn aggregate_sport_band(i: u16) -> (u16, u16) {
    match i {
        1..=4 => (20_000 + 2_000 * i, 20_000 + 2_000 * i + 49),
        5 => (5_000, 5_999),
        _ => panic!("aggregate index out of range: {i}"),
    }
}

fn cbr_aggregate(i: u16, rate_bps: u64, end: SimTime, seed: u64) -> Box<dyn PacketSource> {
    let dports = [80u16, 53, 443, 8080];
    let sizes = [1500u32, 800, 1200, 600];
    let ttls = [64u8, 58, 52, 47];
    let idx = (i - 1) as usize;
    let template = FlowTemplate::udp(
        Ipv4Addr::new(50 + 30 * i as u8, 1, i as u8, 1),
        aggregate_subnet(i),
        aggregate_sport_band(i).0,
        dports[idx],
        ClassId(i),
    )
    .with_size(sizes[idx]);
    let mut template = template;
    template.ttl = ttls[idx];
    let cbr = CbrSource::new(template, rate_bps, SimTime::ZERO, end);
    let spread = Spread {
        dst_low_bits: 8,
        sport: Some(aggregate_sport_band(i)),
        ..Spread::default()
    };
    Box::new(SpreadSource::new(cbr, spread, seed))
}

/// Builds the Fig. 2 workload for a bottleneck of `link_bps`.
///
/// Aggregates 1–4 are CBR at 21.25% of the link each (85% total, as in the
/// original experiment's lightly-loaded baseline); aggregate 5 ramps from
/// zero at t = 13 s up to 4× the link rate at t = 19 s, holds, and ramps
/// back down between t = 25 s and t = 31 s.
pub fn fig2_source(link_bps: u64, seed: u64) -> MergedSource {
    let end = SimTime::from_secs(RUN_SECS);
    let mut sources: Vec<Box<dyn PacketSource>> = Vec::new();
    for i in 1..=4u16 {
        sources.push(cbr_aggregate(
            i,
            link_bps * 2125 / 10_000,
            end,
            seed.wrapping_add(i as u64),
        ));
    }

    // Aggregate 5: piecewise ramp 13 s → 19 s up, 25 s → 31 s down.
    let peak = link_bps * 4;
    let mut steps = Vec::new();
    for k in 0..=5u64 {
        steps.push(RateStep {
            at: SimTime::from_secs(13 + k),
            rate_bps: peak * (k + 1) / 6,
        });
    }
    for k in 1..=6u64 {
        steps.push(RateStep {
            at: SimTime::from_secs(25 + k),
            rate_bps: peak * (6 - k) / 6,
        });
    }
    let template = FlowTemplate::udp(
        Ipv4Addr::new(230, 1, 5, 1),
        aggregate_subnet(5),
        aggregate_sport_band(5).0,
        4444,
        ATTACK_CLASS,
    );
    let ramp = RampSource::new(template, steps, end);
    sources.push(Box::new(SpreadSource::new(
        ramp,
        Spread {
            dst_low_bits: 8,
            sport: Some(aggregate_sport_band(5)),
            ..Spread::default()
        },
        seed.wrapping_add(5),
    )));

    MergedSource::new(sources)
}

/// The four morphing pulse vectors of the Fig. 3 attack, in pulse order.
/// All four are reflection vectors (volumetric pulses are well-defined
/// aggregates, §10) but each morphs the signature: different reflector
/// port, packet size and TTL band.
pub const FIG3_PULSE_VECTORS: [AttackVector; 4] = [
    AttackVector::Ntp,
    AttackVector::Dns,
    AttackVector::Snmp,
    AttackVector::NetBios,
];

/// The destination /24 of pulse `k` (0-based): pulse-wave attacks morph
/// their target along with their vector, so ACC's standing rate-limit
/// session on the previous pulse's prefix never covers the next pulse.
pub fn fig3_pulse_subnet(k: usize) -> Ipv4Addr {
    assert!(k < 4, "pulse index out of range");
    Ipv4Addr::new(220, 18, 5 + k as u8, 0)
}

/// Builds the Fig. 3 workload for a bottleneck of `link_bps`.
///
/// Aggregates 1–4 are CBR at 25% of the link each (together ≈ the link
/// capacity, per §2.2); the attack sends four 5-second pulses starting at
/// 5, 15, 25 and 35 s, each with a different vector *and* a different
/// target /24, at 3× the link rate.
pub fn fig3_source(link_bps: u64, seed: u64) -> MergedSource {
    let end = SimTime::from_secs(RUN_SECS);
    let mut sources: Vec<Box<dyn PacketSource>> = Vec::new();
    for i in 1..=4u16 {
        sources.push(cbr_aggregate(
            i,
            link_bps / 4,
            end,
            seed.wrapping_add(i as u64),
        ));
    }
    for (k, vector) in FIG3_PULSE_VECTORS.iter().enumerate() {
        let start = SimTime::from_secs(5 + 10 * k as u64);
        let stop = start + accturbo_netsim::SimDuration::from_secs(5);
        let cfg = AttackConfig::new(
            *vector,
            link_bps * 3,
            start,
            stop,
            ATTACK_CLASS,
            seed.wrapping_add(100 + k as u64),
        )
        .with_victim(fig3_pulse_subnet(k), 4444)
        .with_carpet_bombing();
        sources.push(Box::new(AttackSource::new(cfg)));
    }
    MergedSource::new(sources)
}

#[cfg(test)]
mod tests {
    use super::*;
    use accturbo_netsim::Packet;

    fn drain(mut src: MergedSource) -> Vec<Packet> {
        std::iter::from_fn(move || src.next_packet()).collect()
    }

    const LINK: u64 = 10_000_000;

    fn rate_of(pkts: &[Packet], class: ClassId, from_s: u64, to_s: u64) -> f64 {
        let bytes: u64 = pkts
            .iter()
            .filter(|p| {
                p.class == class
                    && p.arrival >= SimTime::from_secs(from_s)
                    && p.arrival < SimTime::from_secs(to_s)
            })
            .map(|p| p.size as u64)
            .sum();
        bytes as f64 * 8.0 / (to_s - from_s) as f64
    }

    #[test]
    fn fig2_background_rates() {
        let pkts = drain(fig2_source(LINK, 1));
        for i in 1..=4u16 {
            let r = rate_of(&pkts, ClassId(i), 0, 10);
            let target = LINK as f64 * 0.2125;
            assert!(
                (r - target).abs() / target < 0.05,
                "aggregate {i} rate {r:.0}"
            );
        }
    }

    #[test]
    fn fig2_attack_profile() {
        let pkts = drain(fig2_source(LINK, 1));
        assert_eq!(
            rate_of(&pkts, ATTACK_CLASS, 0, 12),
            0.0,
            "silent before 13s"
        );
        let peak = rate_of(&pkts, ATTACK_CLASS, 20, 25);
        assert!(
            (peak - 4.0 * LINK as f64).abs() / (4.0 * LINK as f64) < 0.1,
            "peak {peak:.0}"
        );
        assert_eq!(
            rate_of(&pkts, ATTACK_CLASS, 32, 50),
            0.0,
            "silent after ramp-down"
        );
        // Ramp is monotone up between 13 and 19.
        let early = rate_of(&pkts, ATTACK_CLASS, 13, 15);
        let late = rate_of(&pkts, ATTACK_CLASS, 17, 19);
        assert!(
            late > early * 1.5,
            "ramp should grow: {early:.0} -> {late:.0}"
        );
    }

    #[test]
    fn fig3_pulses_at_expected_times() {
        let pkts = drain(fig3_source(LINK, 2));
        for k in 0..4u64 {
            let on = rate_of(&pkts, ATTACK_CLASS, 5 + 10 * k, 10 + 10 * k);
            assert!(
                (on - 3.0 * LINK as f64).abs() / (3.0 * LINK as f64) < 0.15,
                "pulse {k} rate {on:.0}"
            );
            let off = rate_of(&pkts, ATTACK_CLASS, 10 + 10 * k, 15 + 10 * k);
            assert_eq!(off, 0.0, "gap {k} must be silent");
        }
    }

    #[test]
    fn fig3_pulses_morph_vectors_and_targets() {
        let pkts = drain(fig3_source(LINK, 2));
        // Each pulse carries its vector's signature port and hits its own
        // /24.
        for (k, expected_sport) in [123u16, 53, 161, 137].into_iter().enumerate() {
            let start = SimTime::from_secs(5 + 10 * k as u64);
            let stop = SimTime::from_secs(10 + 10 * k as u64);
            let pulse: Vec<_> = pkts
                .iter()
                .filter(|p| p.class == ATTACK_CLASS && p.arrival >= start && p.arrival < stop)
                .collect();
            assert!(!pulse.is_empty(), "pulse {k} missing");
            assert!(
                pulse.iter().all(|p| p.sport == expected_sport),
                "pulse {k} sport"
            );
            let subnet = fig3_pulse_subnet(k).octets();
            assert!(
                pulse.iter().all(|p| p.dst.octets()[..3] == subnet[..3]),
                "pulse {k} subnet"
            );
        }
    }

    #[test]
    fn aggregates_use_disjoint_subnets() {
        let pkts = drain(fig2_source(LINK, 3));
        for p in &pkts {
            let expected = aggregate_subnet(p.class.0).octets();
            assert_eq!(
                p.dst.octets()[..3],
                expected[..3],
                "aggregate {} must stay in its /24",
                p.class
            );
        }
    }

    #[test]
    fn aggregates_are_separable_in_feature_space() {
        // Port bands must not overlap across aggregates — that separation
        // is what lets range clustering isolate them.
        for i in 1..=5u16 {
            for j in (i + 1)..=5u16 {
                let (a_lo, a_hi) = aggregate_sport_band(i);
                let (b_lo, b_hi) = aggregate_sport_band(j);
                assert!(a_hi < b_lo || b_hi < a_lo, "bands {i}/{j} overlap");
            }
        }
    }
}
