//! CAIDA-like synthetic background traffic.
//!
//! The paper replays CAIDA backbone traces as benign background. We
//! synthesize a statistically similar mix (see DESIGN.md §1): flows arrive
//! as a Poisson process; flow lengths are heavy-tailed (bounded Pareto);
//! header fields follow backbone-like distributions (ephemeral source
//! ports, service destination ports, mostly TCP, diverse addresses and
//! TTLs). What matters for the reproduction is the *diversity* of benign
//! feature values versus the self-similarity of attack aggregates, and
//! that is exactly what this generator reproduces.

use crate::cbr::FlowTemplate;
use accturbo_netsim::packet::proto;
use accturbo_netsim::{ClassId, Packet, PacketSource, SimDuration, SimTime};
use accturbo_prng::{Rng, SeedableRng, StdRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::net::Ipv4Addr;

/// Background-traffic configuration.
#[derive(Debug, Clone)]
pub struct BackgroundConfig {
    /// Target long-run aggregate rate, in bits per second.
    pub rate_bps: u64,
    /// First packet at or after this time.
    pub start: SimTime,
    /// No packets at or after this time.
    pub end: SimTime,
    /// Mean flow length in packets (bounded-Pareto mean, α = 1.5).
    pub mean_flow_pkts: f64,
    /// RNG seed.
    pub seed: u64,
}

impl BackgroundConfig {
    /// A background mix at `rate_bps` for `[start, end)` with defaults.
    pub fn new(rate_bps: u64, start: SimTime, end: SimTime, seed: u64) -> Self {
        BackgroundConfig {
            rate_bps,
            start,
            end,
            mean_flow_pkts: 60.0,
            seed,
        }
    }
}

/// Common destination service ports with rough backbone weights.
const SERVICE_PORTS: &[(u16, u32)] = &[
    (443, 30),
    (80, 25),
    (53, 8),
    (22, 3),
    (25, 2),
    (123, 2),
    (993, 2),
    (8080, 2),
];

struct Flow {
    template: FlowTemplate,
    remaining: u32,
    gap: SimDuration,
    ip_id: u16,
}

/// Lazily generated background traffic source.
pub struct BackgroundSource {
    cfg: BackgroundConfig,
    rng: StdRng,
    /// (next emission time, flow slot) for active flows; min-heap.
    active: BinaryHeap<Reverse<(SimTime, usize)>>,
    flows: Vec<Flow>,
    free_slots: Vec<usize>,
    next_flow_at: SimTime,
    flow_gap_ns_mean: f64,
    mean_pkt_size: f64,
}

impl BackgroundSource {
    /// Creates the source. Panics on an empty window or zero rate.
    pub fn new(cfg: BackgroundConfig) -> Self {
        assert!(cfg.end > cfg.start, "background window must be non-empty");
        assert!(cfg.rate_bps > 0, "background rate must be positive");
        let rng = StdRng::seed_from_u64(cfg.seed);
        // Mean packet size of the size mix below (empirically ~660 B).
        let mean_pkt_size = 660.0;
        let mean_flow_bytes = cfg.mean_flow_pkts * mean_pkt_size;
        // Flow arrival rate that yields the target byte rate on average.
        let flows_per_sec = cfg.rate_bps as f64 / 8.0 / mean_flow_bytes;
        let flow_gap_ns_mean = 1e9 / flows_per_sec;
        let first = cfg.start;
        BackgroundSource {
            cfg,
            rng,
            active: BinaryHeap::new(),
            flows: Vec::new(),
            free_slots: Vec::new(),
            next_flow_at: first,
            flow_gap_ns_mean,
            mean_pkt_size,
        }
    }

    fn sample_exp(&mut self, mean: f64) -> f64 {
        // Inverse-CDF exponential; u in (0,1].
        let u: f64 = 1.0 - self.rng.gen::<f64>();
        -mean * u.ln()
    }

    /// Bounded Pareto (α = 1.5) flow length with the configured mean.
    fn sample_flow_pkts(&mut self) -> u32 {
        let alpha = 1.5f64;
        // For a Pareto with x_min m, mean = m * α/(α−1) = 3m.
        let m = (self.cfg.mean_flow_pkts / 3.0).max(1.0);
        let u: f64 = self.rng.gen::<f64>().max(1e-12);
        let x = m / u.powf(1.0 / alpha);
        x.clamp(1.0, 10_000.0) as u32
    }

    fn sample_pkt_size(&mut self) -> u32 {
        let r: f64 = self.rng.gen();
        if r < 0.45 {
            self.rng.gen_range(40..=120) // ACKs, DNS queries, small control
        } else if r < 0.75 {
            1500 // MTU-sized bulk transfer
        } else {
            self.rng.gen_range(120..1500)
        }
    }

    fn sample_dport(&mut self) -> u16 {
        let total: u32 = SERVICE_PORTS.iter().map(|&(_, w)| w).sum::<u32>() + 15;
        let mut pick = self.rng.gen_range(0..total);
        for &(port, w) in SERVICE_PORTS {
            if pick < w {
                return port;
            }
            pick -= w;
        }
        self.rng.gen_range(1024..u16::MAX) // long tail
    }

    fn sample_addr(&mut self) -> Ipv4Addr {
        // Public-looking unicast space, avoiding 0/8, 10/8, 127/8, 224+/8.
        let a = loop {
            let a = self.rng.gen_range(1..=223u8);
            if a != 10 && a != 127 {
                break a;
            }
        };
        Ipv4Addr::new(a, self.rng.gen(), self.rng.gen(), self.rng.gen())
    }

    fn spawn_flow(&mut self, now: SimTime) {
        let proto_pick: f64 = self.rng.gen();
        let proto = if proto_pick < 0.80 {
            proto::TCP
        } else if proto_pick < 0.97 {
            proto::UDP
        } else {
            proto::ICMP
        };
        let src = self.sample_addr();
        let dst = self.sample_addr();
        let (sport, dport) = if proto == proto::ICMP {
            (0, 0)
        } else {
            (self.rng.gen_range(1024..u16::MAX), self.sample_dport())
        };
        let remaining = self.sample_flow_pkts();
        let size = self.sample_pkt_size();
        // Per-flow packet rate: log-uniform ~20–800 pps, additionally
        // capped so no single benign flow exceeds ~8% of the scaled
        // bottleneck — a backbone's per-flow rates are small relative to
        // the link, which keeps the 1-second aggregate nearly constant.
        let pps = 10f64
            .powf(self.rng.gen_range(1.3..2.9))
            .min(100_000.0 / size as f64);
        let gap = SimDuration::from_nanos((1e9 / pps) as u64);
        let ttl = *[32u8, 48, 52, 57, 64, 110, 118, 128]
            .get(self.rng.gen_range(0usize..8))
            .expect("index in range");
        let template = FlowTemplate {
            src,
            dst,
            sport,
            dport,
            proto,
            ttl,
            size,
            class: ClassId::BENIGN,
        };
        let flow = Flow {
            template,
            remaining,
            gap,
            ip_id: self.rng.gen(),
        };
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.flows[s] = flow;
                s
            }
            None => {
                self.flows.push(flow);
                self.flows.len() - 1
            }
        };
        self.active.push(Reverse((now, slot)));
    }

    fn schedule_next_flow(&mut self) {
        let gap = self.sample_exp(self.flow_gap_ns_mean);
        self.next_flow_at += SimDuration::from_nanos(gap.max(1.0) as u64);
    }

    /// Mean packet size assumed by the rate calibration (for tests).
    pub fn mean_pkt_size(&self) -> f64 {
        self.mean_pkt_size
    }
}

impl PacketSource for BackgroundSource {
    fn next_packet(&mut self) -> Option<Packet> {
        loop {
            // Admit flow arrivals that precede the earliest active emission.
            let earliest_active = self.active.peek().map(|Reverse((t, _))| *t);
            while self.next_flow_at < self.cfg.end
                && earliest_active.is_none_or(|t| self.next_flow_at <= t)
            {
                let at = self.next_flow_at;
                self.spawn_flow(at);
                self.schedule_next_flow();
                if self.active.peek().map(|Reverse((t, _))| *t) == Some(at) {
                    break;
                }
            }

            let Reverse((t, slot)) = self.active.pop()?;
            if t >= self.cfg.end {
                // Flow truncated by the end of the window; recycle and try
                // the next one (all later emissions are also past the end).
                self.free_slots.push(slot);
                continue;
            }
            // A backbone link carries both directions of a connection:
            // roughly half the packets are server→client responses with
            // the endpoints and ports swapped.
            let reverse = self.rng.gen::<f64>() < 0.45;
            let flow = &mut self.flows[slot];
            let (src, dst, sport, dport) = if reverse {
                (
                    flow.template.dst,
                    flow.template.src,
                    flow.template.dport,
                    flow.template.sport,
                )
            } else {
                (
                    flow.template.src,
                    flow.template.dst,
                    flow.template.sport,
                    flow.template.dport,
                )
            };
            let mut pkt = Packet::new(t)
                .with_size(flow.template.size)
                .with_src(src)
                .with_dst(dst)
                .with_ports(sport, dport)
                .with_proto(flow.template.proto)
                .with_ttl(flow.template.ttl)
                .with_class(ClassId::BENIGN);
            pkt.ip_id = flow.ip_id;
            if flow.template.proto == proto::TCP {
                pkt.tcp_flags = 0x10; // ACK
            }
            flow.ip_id = flow.ip_id.wrapping_add(1);
            flow.remaining -= 1;
            if flow.remaining > 0 {
                let next = t + flow.gap;
                self.active.push(Reverse((next, slot)));
            } else {
                self.free_slots.push(slot);
            }
            return Some(pkt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(cfg: BackgroundConfig) -> Vec<Packet> {
        let mut src = BackgroundSource::new(cfg);
        std::iter::from_fn(move || src.next_packet()).collect()
    }

    #[test]
    fn respects_time_window() {
        let pkts = collect(BackgroundConfig::new(
            5_000_000,
            SimTime::from_secs(1),
            SimTime::from_secs(3),
            7,
        ));
        assert!(!pkts.is_empty());
        assert!(pkts.iter().all(|p| p.arrival >= SimTime::from_secs(1)));
        assert!(pkts.iter().all(|p| p.arrival < SimTime::from_secs(3)));
    }

    #[test]
    fn emits_in_time_order() {
        let pkts = collect(BackgroundConfig::new(
            5_000_000,
            SimTime::ZERO,
            SimTime::from_secs(2),
            11,
        ));
        assert!(pkts.windows(2).all(|w| w[0].arrival <= w[1].arrival));
    }

    #[test]
    fn long_run_rate_close_to_target() {
        let target = 10_000_000u64; // 10 Mbps
        let secs = 20u64;
        let pkts = collect(BackgroundConfig::new(
            target,
            SimTime::ZERO,
            SimTime::from_secs(secs),
            42,
        ));
        let bytes: u64 = pkts.iter().map(|p| p.size as u64).sum();
        let rate = bytes as f64 * 8.0 / secs as f64;
        let err = (rate - target as f64).abs() / target as f64;
        assert!(
            err < 0.30,
            "generated {rate:.0} bps vs target {target} (err {err:.2})"
        );
    }

    #[test]
    fn traffic_is_diverse() {
        let pkts = collect(BackgroundConfig::new(
            5_000_000,
            SimTime::ZERO,
            SimTime::from_secs(5),
            3,
        ));
        let srcs: std::collections::HashSet<_> = pkts.iter().map(|p| p.src).collect();
        let dports: std::collections::HashSet<_> = pkts.iter().map(|p| p.dport).collect();
        assert!(srcs.len() > 100, "only {} distinct sources", srcs.len());
        assert!(dports.len() > 8, "only {} distinct dports", dports.len());
        let tcp = pkts.iter().filter(|p| p.proto == proto::TCP).count();
        let frac = tcp as f64 / pkts.len() as f64;
        assert!((0.6..0.95).contains(&frac), "TCP fraction {frac}");
    }

    #[test]
    fn all_packets_are_benign() {
        let pkts = collect(BackgroundConfig::new(
            1_000_000,
            SimTime::ZERO,
            SimTime::from_secs(1),
            5,
        ));
        assert!(pkts.iter().all(|p| p.class.is_benign()));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = collect(BackgroundConfig::new(
            2_000_000,
            SimTime::ZERO,
            SimTime::from_secs(2),
            9,
        ));
        let b = collect(BackgroundConfig::new(
            2_000_000,
            SimTime::ZERO,
            SimTime::from_secs(2),
            9,
        ));
        assert_eq!(a.len(), b.len());
        assert_eq!(a, b);
        let c = collect(BackgroundConfig::new(
            2_000_000,
            SimTime::ZERO,
            SimTime::from_secs(2),
            10,
        ));
        assert_ne!(a, c, "different seeds should differ");
    }
}
