//! A CICDDoS-2019-like attack day.
//!
//! The paper's simulation evaluation (§8) feeds the CICDDoS-2019 trace —
//! a day of traffic containing a sequence of distinct DDoS attacks — into
//! the simulated switch. This module synthesizes a time-compressed
//! equivalent: continuous benign background with one attack episode per
//! vector, in the order of Fig. 9a. Each episode's class is the vector's
//! index + 1, so clustering quality can be scored per vector.

use crate::background::{BackgroundConfig, BackgroundSource};
use crate::vectors::{AttackConfig, AttackSource, AttackVector};
use accturbo_netsim::{ClassId, MergedSource, PacketSource, SimDuration, SimTime};
use std::net::Ipv4Addr;

/// Configuration of the synthetic attack day.
#[derive(Debug, Clone)]
pub struct CicDdosConfig {
    /// Vectors to include, in episode order.
    pub vectors: Vec<AttackVector>,
    /// Benign background rate (bits per second), continuous.
    pub background_bps: u64,
    /// Attack rate during an episode (bits per second).
    pub attack_bps: u64,
    /// Length of each attack episode.
    pub episode: SimDuration,
    /// Quiet gap between episodes.
    pub gap: SimDuration,
    /// Lead-in of pure background before the first episode.
    pub lead_in: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CicDdosConfig {
    fn default() -> Self {
        CicDdosConfig {
            vectors: AttackVector::ALL.to_vec(),
            background_bps: 20_000_000,
            attack_bps: 60_000_000,
            episode: SimDuration::from_secs(8),
            gap: SimDuration::from_secs(4),
            lead_in: SimDuration::from_secs(4),
            seed: 0xC1C,
        }
    }
}

/// One scheduled attack episode.
#[derive(Debug, Clone, Copy)]
pub struct Episode {
    /// The attack vector.
    pub vector: AttackVector,
    /// Episode start.
    pub start: SimTime,
    /// Episode end.
    pub end: SimTime,
    /// Ground-truth class of the episode's packets.
    pub class: ClassId,
}

impl CicDdosConfig {
    /// The episode schedule implied by this configuration.
    pub fn schedule(&self) -> Vec<Episode> {
        let mut at = SimTime::ZERO + self.lead_in;
        self.vectors
            .iter()
            .enumerate()
            .map(|(i, &vector)| {
                let start = at;
                let end = start + self.episode;
                at = end + self.gap;
                Episode {
                    vector,
                    start,
                    end,
                    class: ClassId(i as u16 + 1),
                }
            })
            .collect()
    }

    /// Total duration of the day (end of the last gap).
    pub fn total_duration(&self) -> SimDuration {
        self.lead_in + (self.episode + self.gap) * self.vectors.len() as u64
    }

    /// Ground-truth class for `vector`, if scheduled.
    pub fn class_of(&self, vector: AttackVector) -> Option<ClassId> {
        self.schedule()
            .iter()
            .find(|e| e.vector == vector)
            .map(|e| e.class)
    }

    /// Materializes the full day as one time-ordered source.
    pub fn into_source(self) -> MergedSource {
        let end = SimTime::ZERO + self.total_duration();
        let mut sources: Vec<Box<dyn PacketSource>> = Vec::new();
        sources.push(Box::new(BackgroundSource::new(BackgroundConfig::new(
            self.background_bps,
            SimTime::ZERO,
            end,
            self.seed,
        ))));
        for (i, ep) in self.schedule().into_iter().enumerate() {
            let cfg = AttackConfig::new(
                ep.vector,
                self.attack_bps,
                ep.start,
                ep.end,
                ep.class,
                self.seed.wrapping_add(1000 + i as u64),
            )
            .with_victim(Ipv4Addr::new(198, 18, 0, 10), 4444);
            sources.push(Box::new(AttackSource::new(cfg)));
        }
        MergedSource::new(sources)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_sequential_and_disjoint() {
        let cfg = CicDdosConfig::default();
        let eps = cfg.schedule();
        assert_eq!(eps.len(), 10);
        for w in eps.windows(2) {
            assert!(w[0].end <= w[1].start, "episodes must not overlap");
        }
        assert_eq!(eps[0].start, SimTime::from_secs(4));
        assert_eq!(eps[0].end, SimTime::from_secs(12));
        assert_eq!(eps[1].start, SimTime::from_secs(16));
    }

    #[test]
    fn classes_are_distinct_per_vector() {
        let cfg = CicDdosConfig::default();
        let classes: std::collections::HashSet<_> =
            cfg.schedule().iter().map(|e| e.class).collect();
        assert_eq!(classes.len(), 10);
        assert_eq!(cfg.class_of(AttackVector::Ntp), Some(ClassId(1)));
        assert_eq!(cfg.class_of(AttackVector::SynFlood), Some(ClassId(10)));
    }

    #[test]
    fn source_emits_attack_only_inside_episodes() {
        let cfg = CicDdosConfig {
            vectors: vec![AttackVector::Ntp, AttackVector::Dns],
            background_bps: 1_000_000,
            attack_bps: 5_000_000,
            episode: SimDuration::from_secs(2),
            gap: SimDuration::from_secs(2),
            lead_in: SimDuration::from_secs(1),
            seed: 7,
        };
        let schedule = cfg.schedule();
        let mut src = cfg.into_source();
        let mut saw_attack = 0u64;
        while let Some(p) = src.next_packet() {
            if p.class.is_attack() {
                saw_attack += 1;
                let ep = schedule
                    .iter()
                    .find(|e| e.class == p.class)
                    .expect("episode for class");
                assert!(p.arrival >= ep.start && p.arrival < ep.end);
            }
        }
        assert!(saw_attack > 100);
    }

    #[test]
    fn total_duration_accounts_for_everything() {
        let cfg = CicDdosConfig::default();
        assert_eq!(cfg.total_duration(), SimDuration::from_secs(4 + 10 * 12));
    }
}
