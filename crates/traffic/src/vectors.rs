//! Attack-vector packet templates.
//!
//! One generator per attack vector of the CICDDoS-2019 dataset used in the
//! paper's §8 evaluation, split as in Fig. 9a into reflection-based
//! (NTP, DNS, MSSQL, NetBIOS, SNMP, SSDP, TFTP) and exploitation-based
//! (UDP flood, UDPLag, SYN flood) vectors. Each template encodes the
//! header signature that drives clustering performance: reflection
//! vectors source from a bounded reflector pool on a well-known port;
//! exploitation vectors spoof freely. MSSQL and SSDP are given the high
//! source-port variance the paper calls out as the reason they cluster
//! worst among reflection attacks (§8.1).

use accturbo_netsim::packet::proto;
use accturbo_netsim::{ClassId, Packet, PacketSource, SimDuration, SimTime};
use accturbo_prng::{Rng, SeedableRng, StdRng};
use std::net::Ipv4Addr;

/// The attack vectors of the paper's simulation dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackVector {
    /// NTP monlist reflection: UDP from port 123, large fixed-size replies.
    Ntp,
    /// DNS ANY reflection: UDP from port 53, large replies.
    Dns,
    /// MSSQL reflection: UDP, *many* source ports (high variance).
    Mssql,
    /// NetBIOS name-service reflection: UDP from port 137.
    NetBios,
    /// SNMP GetBulk reflection: UDP from port 161.
    Snmp,
    /// SSDP reflection: UDP, high source-port variance.
    Ssdp,
    /// TFTP reflection: UDP from the server's ephemeral data port.
    Tftp,
    /// Generic UDP flood (exploitation): random headers.
    UdpFlood,
    /// UDP-Lag flood (exploitation): small packets, random ports.
    UdpLag,
    /// SYN flood (exploitation): 40-byte TCP SYNs, spoofed sources.
    SynFlood,
    /// Memcached reflection (the GitHub-2018 vector, §10): UDP from port
    /// 11211, huge fixed-size replies, small reflector pool.
    Memcached,
    /// CLDAP reflection: UDP from port 389, large replies.
    Ldap,
    /// ACK flood (Mirai's repertoire, §10): 40-byte TCP ACKs.
    AckFlood,
    /// ICMP flood: fixed-size echo requests, no ports.
    IcmpFlood,
}

impl AttackVector {
    /// Every vector, including those beyond the CICDDoS-2019 set
    /// (Memcached, CLDAP, ACK and ICMP floods from the paper's §10
    /// discussion of real-world attacks).
    pub const EXTENDED: [AttackVector; 14] = [
        AttackVector::Ntp,
        AttackVector::Dns,
        AttackVector::Mssql,
        AttackVector::NetBios,
        AttackVector::Snmp,
        AttackVector::Ssdp,
        AttackVector::Tftp,
        AttackVector::UdpFlood,
        AttackVector::UdpLag,
        AttackVector::SynFlood,
        AttackVector::Memcached,
        AttackVector::Ldap,
        AttackVector::AckFlood,
        AttackVector::IcmpFlood,
    ];

    /// All vectors, in the order of Fig. 9a.
    pub const ALL: [AttackVector; 10] = [
        AttackVector::Ntp,
        AttackVector::Dns,
        AttackVector::Mssql,
        AttackVector::NetBios,
        AttackVector::Snmp,
        AttackVector::Ssdp,
        AttackVector::Tftp,
        AttackVector::UdpFlood,
        AttackVector::UdpLag,
        AttackVector::SynFlood,
    ];

    /// Short display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            AttackVector::Ntp => "NTP",
            AttackVector::Dns => "DNS",
            AttackVector::Mssql => "MSSQL",
            AttackVector::NetBios => "NetBIOS",
            AttackVector::Snmp => "SNMP",
            AttackVector::Ssdp => "SSDP",
            AttackVector::Tftp => "TFTP",
            AttackVector::UdpFlood => "UDP",
            AttackVector::UdpLag => "UDPLag",
            AttackVector::SynFlood => "SYN",
            AttackVector::Memcached => "Memcached",
            AttackVector::Ldap => "LDAP",
            AttackVector::AckFlood => "ACK",
            AttackVector::IcmpFlood => "ICMP",
        }
    }

    /// Resolves a vector from its display name, case-insensitively (the
    /// `xp run workload=cicday:vectors=…` grammar).
    pub fn by_name(name: &str) -> Option<AttackVector> {
        AttackVector::EXTENDED
            .iter()
            .copied()
            .find(|v| v.name().eq_ignore_ascii_case(name))
    }

    /// True for reflection/amplification vectors (Fig. 9a's split).
    pub fn is_reflection(self) -> bool {
        !matches!(
            self,
            AttackVector::UdpFlood
                | AttackVector::UdpLag
                | AttackVector::SynFlood
                | AttackVector::AckFlood
                | AttackVector::IcmpFlood
        )
    }

    /// Size of the reflector pool the vector sources from (`None` for
    /// exploitation vectors, which spoof arbitrary sources).
    fn reflector_pool(self) -> Option<u32> {
        match self {
            AttackVector::Ntp => Some(600),
            AttackVector::Dns => Some(900),
            AttackVector::Mssql => Some(1400),
            AttackVector::NetBios => Some(700),
            AttackVector::Snmp => Some(800),
            AttackVector::Ssdp => Some(1600),
            AttackVector::Tftp => Some(500),
            AttackVector::Memcached => Some(200),
            AttackVector::Ldap => Some(450),
            _ => None,
        }
    }
}

/// Configuration of one attack traffic stream.
#[derive(Debug, Clone)]
pub struct AttackConfig {
    /// Which vector to emit.
    pub vector: AttackVector,
    /// Aggregate attack rate in bits per second.
    pub rate_bps: u64,
    /// First packet at or after this time.
    pub start: SimTime,
    /// No packets at or after this time.
    pub end: SimTime,
    /// Victim destination address.
    pub victim: Ipv4Addr,
    /// Victim destination port (reflection responses land on the spoofed
    /// request's ephemeral port; pass the port the attacker chose).
    pub dport: u16,
    /// Ground-truth class to stamp.
    pub class: ClassId,
    /// RNG seed.
    pub seed: u64,
    /// Randomize the last byte of the destination (carpet bombing).
    pub carpet_bombing: bool,
    /// Randomize the source address fully (defeats src-based signatures).
    pub source_spoofing: bool,
    /// Randomize the destination port per packet (defaults to true for the
    /// exploitation flood vectors, false for reflection vectors, matching
    /// each vector's natural signature).
    pub randomize_dport: bool,
    /// Emit a single flow: every packet shares one 5-tuple and size (the
    /// base attack of the paper's §7.2 comparison — "all the packets share
    /// the 5-tuple"). Carpet bombing / spoofing modifiers still apply on
    /// top, morphing exactly the fields they randomize.
    pub single_flow: bool,
}

impl AttackConfig {
    /// An attack stream with the given essentials and neutral extras.
    pub fn new(
        vector: AttackVector,
        rate_bps: u64,
        start: SimTime,
        end: SimTime,
        class: ClassId,
        seed: u64,
    ) -> Self {
        AttackConfig {
            vector,
            rate_bps,
            start,
            end,
            victim: Ipv4Addr::new(198, 18, 0, 10),
            dport: 4444,
            class,
            seed,
            carpet_bombing: false,
            source_spoofing: false,
            randomize_dport: matches!(vector, AttackVector::UdpFlood | AttackVector::UdpLag),
            single_flow: false,
        }
    }

    /// Collapses the attack to a single flow (one 5-tuple, one size).
    pub fn with_single_flow(mut self) -> Self {
        self.single_flow = true;
        self.randomize_dport = false;
        self
    }

    /// Enables carpet bombing (random dst within the victim /24).
    pub fn with_carpet_bombing(mut self) -> Self {
        self.carpet_bombing = true;
        self
    }

    /// Enables full source spoofing.
    pub fn with_source_spoofing(mut self) -> Self {
        self.source_spoofing = true;
        self
    }

    /// Sets the victim address/port.
    pub fn with_victim(mut self, victim: Ipv4Addr, dport: u16) -> Self {
        self.victim = victim;
        self.dport = dport;
        self
    }

    /// Pins the destination port to `dport` for every packet (used by the
    /// Fig. 6 pulses, where each pulse targets one IP and one port).
    pub fn with_fixed_dport(mut self, dport: u16) -> Self {
        self.dport = dport;
        self.randomize_dport = false;
        self
    }
}

/// A lazily generated attack packet stream.
pub struct AttackSource {
    cfg: AttackConfig,
    rng: StdRng,
    next: SimTime,
    mean_size: f64,
    ip_id: u16,
}

impl AttackSource {
    /// Creates the stream. Panics on a degenerate window or rate.
    pub fn new(cfg: AttackConfig) -> Self {
        assert!(cfg.end > cfg.start, "attack window must be non-empty");
        assert!(cfg.rate_bps > 0, "attack rate must be positive");
        let rng = StdRng::seed_from_u64(cfg.seed);
        let mean_size = match cfg.vector {
            AttackVector::Ntp => 468.0,
            AttackVector::Dns => 1100.0,
            AttackVector::Mssql => 630.0,
            AttackVector::NetBios => 250.0,
            AttackVector::Snmp => 800.0,
            AttackVector::Ssdp => 350.0,
            AttackVector::Tftp => 516.0,
            AttackVector::UdpFlood => 700.0,
            AttackVector::UdpLag => 90.0,
            AttackVector::SynFlood => 40.0,
            AttackVector::Memcached => 1428.0,
            AttackVector::Ldap => 1200.0,
            AttackVector::AckFlood => 40.0,
            AttackVector::IcmpFlood => 64.0,
        };
        let next = cfg.start;
        AttackSource {
            cfg,
            rng,
            next,
            mean_size,
            ip_id: 0,
        }
    }

    fn sample_size(&mut self) -> u32 {
        let v = self.cfg.vector;
        match v {
            // Fixed-size amplification payloads.
            AttackVector::Ntp => 468,
            AttackVector::NetBios => 250,
            AttackVector::SynFlood => 40,
            AttackVector::AckFlood => 40,
            AttackVector::IcmpFlood => 64,
            AttackVector::Memcached => 1428,
            AttackVector::Tftp => 516,
            // Moderate per-packet variance.
            AttackVector::Dns => self.rng.gen_range(900..1300),
            AttackVector::Snmp => self.rng.gen_range(600..1000),
            AttackVector::Ssdp => self.rng.gen_range(280..420),
            AttackVector::Ldap => self.rng.gen_range(1000..1400),
            AttackVector::Mssql => self.rng.gen_range(400..860),
            AttackVector::UdpLag => self.rng.gen_range(60..120),
            // Fully random (exploitation).
            AttackVector::UdpFlood => self.rng.gen_range(100..1400),
        }
    }

    fn sample_src(&mut self) -> Ipv4Addr {
        if self.cfg.source_spoofing {
            return Ipv4Addr::new(
                self.rng.gen_range(1..=223),
                self.rng.gen(),
                self.rng.gen(),
                self.rng.gen(),
            );
        }
        match self.cfg.vector.reflector_pool() {
            Some(pool) => {
                // Reflectors drawn deterministically from a few /16s:
                // reflector i lives at 185.X.Y.Z derived from i.
                let i = self.rng.gen_range(0..pool);
                Ipv4Addr::new(
                    185,
                    (40 + (i / 4096)) as u8,
                    ((i / 256) % 16 * 16 + i % 16) as u8,
                    (i % 256) as u8,
                )
            }
            None => {
                // Exploitation vectors: botnet-style sources from a handful
                // of infected /16s (Mirai-like: shared source subnets).
                let subnet = self.rng.gen_range(0..24u8);
                Ipv4Addr::new(
                    100 + subnet / 8,
                    64 + subnet,
                    self.rng.gen(),
                    self.rng.gen(),
                )
            }
        }
    }

    fn sample_sport(&mut self) -> u16 {
        match self.cfg.vector {
            AttackVector::Ntp => 123,
            AttackVector::Dns => 53,
            AttackVector::NetBios => 137,
            AttackVector::Snmp => 161,
            AttackVector::Memcached => 11_211,
            AttackVector::Ldap => 389,
            AttackVector::IcmpFlood => 0,
            // High source-port variance (paper §8.1: MSSQL and SSDP
            // cluster worst among reflection vectors for this reason).
            AttackVector::Mssql => self.rng.gen_range(1024..u16::MAX),
            AttackVector::Ssdp => self.rng.gen_range(1024..u16::MAX),
            AttackVector::Tftp => self.rng.gen_range(49152..u16::MAX),
            AttackVector::UdpFlood
            | AttackVector::UdpLag
            | AttackVector::SynFlood
            | AttackVector::AckFlood => self.rng.gen_range(1024..u16::MAX),
        }
    }

    fn sample_dst(&mut self) -> Ipv4Addr {
        let v = self.cfg.victim;
        if self.cfg.carpet_bombing {
            let o = v.octets();
            Ipv4Addr::new(o[0], o[1], o[2], self.rng.gen())
        } else {
            v
        }
    }
}

impl PacketSource for AttackSource {
    fn next_packet(&mut self) -> Option<Packet> {
        if self.next >= self.cfg.end {
            return None;
        }
        let (size, src, sport) = if self.cfg.single_flow {
            (
                self.mean_size as u32,
                if self.cfg.source_spoofing {
                    self.sample_src()
                } else {
                    std::net::Ipv4Addr::new(185, 40, 0, 1)
                },
                7777,
            )
        } else {
            (self.sample_size(), self.sample_src(), self.sample_sport())
        };
        let dst = self.sample_dst();
        let (protocol, tcp_flags) = match self.cfg.vector {
            AttackVector::SynFlood => (proto::TCP, 0x02u8), // SYN
            AttackVector::AckFlood => (proto::TCP, 0x10),   // ACK
            AttackVector::IcmpFlood => (proto::ICMP, 0),
            _ => (proto::UDP, 0),
        };
        // Reflection replies traverse real paths: narrow TTL band.
        // Exploitation floods come from bot machines running the same
        // tool/OS: their TTLs also sit in a narrow band, just a different
        // one. Fully random TTLs only appear with explicit spoofing.
        let ttl = if self.cfg.source_spoofing {
            self.rng.gen_range(30..=128)
        } else if self.cfg.vector.is_reflection() {
            self.rng.gen_range(52..=60)
        } else {
            self.rng.gen_range(58..=64)
        };
        let dport = match self.cfg.vector {
            AttackVector::SynFlood | AttackVector::AckFlood => 80,
            AttackVector::IcmpFlood => 0,
            _ if self.cfg.randomize_dport => self.rng.gen_range(1..u16::MAX),
            _ => self.cfg.dport,
        };
        let mut pkt = Packet::new(self.next)
            .with_size(size)
            .with_src(src)
            .with_dst(dst)
            .with_ports(sport, dport)
            .with_proto(protocol)
            .with_ttl(ttl)
            .with_class(self.cfg.class);
        pkt.tcp_flags = tcp_flags;
        pkt.ip_id = self.ip_id;
        self.ip_id = self.ip_id.wrapping_add(1);
        // Pace to the configured aggregate rate using the vector's mean
        // size (per-packet sizes jitter around it).
        let gap_ns = self.mean_size * 8.0 * 1e9 / self.cfg.rate_bps as f64;
        self.next += SimDuration::from_nanos(gap_ns.max(1.0) as u64);
        Some(pkt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(cfg: AttackConfig) -> Vec<Packet> {
        let mut src = AttackSource::new(cfg);
        std::iter::from_fn(move || src.next_packet()).collect()
    }

    fn basic(vector: AttackVector) -> AttackConfig {
        AttackConfig::new(
            vector,
            10_000_000,
            SimTime::ZERO,
            SimTime::from_secs(1),
            ClassId(1),
            99,
        )
    }

    #[test]
    fn rate_is_close_to_target() {
        for vector in AttackVector::ALL {
            let pkts = collect(basic(vector));
            let bytes: u64 = pkts.iter().map(|p| p.size as u64).sum();
            let rate = bytes as f64 * 8.0;
            let err = (rate - 1e7).abs() / 1e7;
            assert!(
                err < 0.1,
                "{}: rate {rate:.0} off target ({err:.2})",
                vector.name()
            );
        }
    }

    #[test]
    fn reflection_vectors_have_signature_ports() {
        for (vector, port) in [
            (AttackVector::Ntp, 123),
            (AttackVector::Dns, 53),
            (AttackVector::NetBios, 137),
            (AttackVector::Snmp, 161),
        ] {
            let pkts = collect(basic(vector));
            assert!(pkts.iter().all(|p| p.sport == port), "{}", vector.name());
        }
    }

    #[test]
    fn mssql_and_ssdp_have_high_sport_variance() {
        for vector in [AttackVector::Mssql, AttackVector::Ssdp] {
            let pkts = collect(basic(vector));
            let sports: std::collections::HashSet<_> = pkts.iter().map(|p| p.sport).collect();
            assert!(
                sports.len() > 100,
                "{}: {} sports",
                vector.name(),
                sports.len()
            );
        }
    }

    #[test]
    fn reflection_sources_come_from_bounded_pool() {
        let pkts = collect(basic(AttackVector::Ntp));
        let srcs: std::collections::HashSet<_> = pkts.iter().map(|p| p.src).collect();
        assert!(srcs.len() <= 600, "NTP pool leaked: {}", srcs.len());
        assert!(pkts.iter().all(|p| p.src.octets()[0] == 185));
    }

    #[test]
    fn syn_flood_is_tcp_syn_40b() {
        let pkts = collect(basic(AttackVector::SynFlood));
        assert!(pkts.iter().all(|p| p.proto == proto::TCP));
        assert!(pkts.iter().all(|p| p.tcp_flags == 0x02));
        assert!(pkts.iter().all(|p| p.size == 40));
        assert!(pkts.iter().all(|p| p.dport == 80));
    }

    #[test]
    fn carpet_bombing_spreads_destinations_within_slash24() {
        let pkts = collect(basic(AttackVector::UdpFlood).with_carpet_bombing());
        let dsts: std::collections::HashSet<_> = pkts.iter().map(|p| p.dst).collect();
        assert!(dsts.len() > 100, "{} dsts", dsts.len());
        let prefix: std::collections::HashSet<_> = pkts
            .iter()
            .map(|p| {
                let o = p.dst.octets();
                (o[0], o[1], o[2])
            })
            .collect();
        assert_eq!(prefix.len(), 1, "carpet bombing must stay in the /24");
    }

    #[test]
    fn source_spoofing_diversifies_sources() {
        let plain = collect(basic(AttackVector::Ntp));
        let spoofed = collect(basic(AttackVector::Ntp).with_source_spoofing());
        let plain_srcs: std::collections::HashSet<_> = plain.iter().map(|p| p.src).collect();
        let spoofed_srcs: std::collections::HashSet<_> = spoofed.iter().map(|p| p.src).collect();
        assert!(spoofed_srcs.len() > plain_srcs.len() * 3);
    }

    #[test]
    fn class_and_window_are_respected() {
        let pkts = collect(AttackConfig::new(
            AttackVector::Dns,
            5_000_000,
            SimTime::from_secs(2),
            SimTime::from_secs(4),
            ClassId(7),
            1,
        ));
        assert!(pkts.iter().all(|p| p.class == ClassId(7)));
        assert!(pkts.iter().all(|p| p.arrival >= SimTime::from_secs(2)));
        assert!(pkts.iter().all(|p| p.arrival < SimTime::from_secs(4)));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = collect(basic(AttackVector::Ssdp));
        let b = collect(basic(AttackVector::Ssdp));
        assert_eq!(a, b);
    }

    #[test]
    fn extended_vectors_have_their_signatures() {
        let memcached = collect(basic(AttackVector::Memcached));
        assert!(memcached
            .iter()
            .all(|p| p.sport == 11_211 && p.size == 1428));
        let ldap = collect(basic(AttackVector::Ldap));
        assert!(ldap.iter().all(|p| p.sport == 389));
        assert!(ldap.iter().all(|p| (1000..1400).contains(&p.size)));
        let ack = collect(basic(AttackVector::AckFlood));
        assert!(ack
            .iter()
            .all(|p| p.proto == proto::TCP && p.tcp_flags == 0x10));
        assert!(ack.iter().all(|p| p.size == 40 && p.dport == 80));
        let icmp = collect(basic(AttackVector::IcmpFlood));
        assert!(icmp.iter().all(|p| p.proto == proto::ICMP));
        assert!(icmp.iter().all(|p| p.sport == 0 && p.dport == 0));
    }

    #[test]
    fn extended_list_is_a_superset_of_all() {
        for v in AttackVector::ALL {
            assert!(AttackVector::EXTENDED.contains(&v));
        }
        assert!(AttackVector::EXTENDED.len() > AttackVector::ALL.len());
        assert!(AttackVector::Memcached.is_reflection());
        assert!(AttackVector::Ldap.is_reflection());
        assert!(!AttackVector::AckFlood.is_reflection());
        assert!(!AttackVector::IcmpFlood.is_reflection());
    }

    #[test]
    fn single_flow_shares_one_five_tuple() {
        let pkts = collect(basic(AttackVector::UdpFlood).with_single_flow());
        let tuples: std::collections::HashSet<_> = pkts.iter().map(|p| p.five_tuple()).collect();
        assert_eq!(tuples.len(), 1);
        let sizes: std::collections::HashSet<_> = pkts.iter().map(|p| p.size).collect();
        assert_eq!(sizes.len(), 1);
    }

    #[test]
    fn single_flow_carpet_bombing_varies_only_dst() {
        let pkts = collect(
            basic(AttackVector::UdpFlood)
                .with_single_flow()
                .with_carpet_bombing(),
        );
        let srcs: std::collections::HashSet<_> = pkts.iter().map(|p| p.src).collect();
        let dsts: std::collections::HashSet<_> = pkts.iter().map(|p| p.dst).collect();
        assert_eq!(srcs.len(), 1, "carpet bombing keeps the source fixed");
        assert!(dsts.len() > 100, "carpet bombing spreads destinations");
    }

    #[test]
    fn single_flow_spoofing_varies_only_src() {
        let pkts = collect(
            basic(AttackVector::UdpFlood)
                .with_single_flow()
                .with_source_spoofing(),
        );
        let srcs: std::collections::HashSet<_> = pkts.iter().map(|p| p.src).collect();
        let dsts: std::collections::HashSet<_> = pkts.iter().map(|p| p.dst).collect();
        assert!(srcs.len() > 100, "spoofing spreads sources");
        assert_eq!(dsts.len(), 1, "spoofing keeps the victim fixed");
    }
}
