//! The control-plane priority mapper (paper §5.2).
//!
//! Each control period the controller (i) polls per-cluster statistics
//! from the data plane, (ii) scores every cluster with a ranking
//! algorithm, and (iii) derives the cluster → priority-queue mapping that
//! the data plane applies to subsequent packets. Least-malicious clusters
//! get the highest priority (queue 0); when there are more clusters than
//! queues the mapping spreads rank-proportionally.

use crate::rank::RankingAlgorithm;
use accturbo_clustering::WindowStats;
use accturbo_obs::{Event, Tracer};
use std::collections::HashMap;

/// Derives cluster → queue mappings from polled statistics.
#[derive(Debug, Clone)]
pub struct Controller {
    ranking: RankingAlgorithm,
    num_queues: usize,
    /// Operator overrides (§10): cluster index → pinned queue.
    pinned: HashMap<usize, usize>,
}

impl Controller {
    /// Creates a controller using `ranking` over `num_queues` priority
    /// queues. Panics when `num_queues` is zero.
    pub fn new(ranking: RankingAlgorithm, num_queues: usize) -> Self {
        assert!(num_queues > 0, "need at least one priority queue");
        Controller {
            ranking,
            num_queues,
            pinned: HashMap::new(),
        }
    }

    /// The ranking algorithm in use.
    pub fn ranking(&self) -> RankingAlgorithm {
        self.ranking
    }

    /// Number of priority queues.
    pub fn num_queues(&self) -> usize {
        self.num_queues
    }

    /// Pins `cluster` to `queue` regardless of its score — the operator
    /// override of §10 (e.g. a dedicated queue for known-benign traffic).
    pub fn pin(&mut self, cluster: usize, queue: usize) {
        assert!(queue < self.num_queues, "pinned queue out of range");
        self.pinned.insert(cluster, queue);
    }

    /// Removes a pin.
    pub fn unpin(&mut self, cluster: usize) {
        self.pinned.remove(&cluster);
    }

    /// Computes the cluster → queue mapping for this period.
    ///
    /// `stats[i]` and `sizes[i]` describe cluster `i` (`sizes[i] = None`
    /// for empty slots). Returns one queue index per cluster.
    pub fn assign_queues(&self, stats: &[WindowStats], sizes: &[Option<f64>]) -> Vec<usize> {
        assert_eq!(stats.len(), sizes.len(), "stats/sizes arity mismatch");
        let n = stats.len();
        let mut order: Vec<usize> = (0..n).collect();
        let scores: Vec<f64> = (0..n)
            .map(|i| self.ranking.score(&stats[i], sizes[i]))
            .collect();
        // Ascending score: best behaved first. Stable tie-break on index.
        order.sort_by(|&a, &b| {
            scores[a]
                .partial_cmp(&scores[b])
                .expect("scores are finite")
                .then(a.cmp(&b))
        });

        let mut queues = vec![0usize; n];
        for (rank, &cluster) in order.iter().enumerate() {
            // Spread ranks over the queues proportionally.
            queues[cluster] = rank * self.num_queues / n.max(1);
        }
        for (&cluster, &queue) in &self.pinned {
            if cluster < n {
                queues[cluster] = queue;
            }
        }
        queues
    }

    /// Like [`assign_queues`](Self::assign_queues), but emits a
    /// `priority_remap` trace event at `now_ns` carrying the new mapping.
    pub fn assign_queues_traced<T: Tracer + ?Sized>(
        &self,
        stats: &[WindowStats],
        sizes: &[Option<f64>],
        tracer: &mut T,
        now_ns: u64,
    ) -> Vec<usize> {
        let queues = self.assign_queues(stats, sizes);
        if tracer.enabled() {
            tracer.record(now_ns, &Event::PriorityRemap { mapping: &queues });
        }
        queues
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(v: &[(u64, u64)]) -> Vec<WindowStats> {
        v.iter()
            .map(|&(pkts, bytes)| WindowStats { pkts, bytes })
            .collect()
    }

    #[test]
    fn highest_rate_cluster_gets_worst_queue() {
        let c = Controller::new(RankingAlgorithm::Throughput, 4);
        let s = stats(&[(10, 1_000), (10, 100_000), (10, 10_000), (10, 500)]);
        let sizes = vec![Some(1.0); 4];
        let q = c.assign_queues(&s, &sizes);
        assert_eq!(q[1], 3, "heaviest cluster must be deprioritized");
        assert_eq!(q[3], 0, "lightest cluster must keep top priority");
        assert_eq!(q, vec![1, 3, 2, 0]);
    }

    #[test]
    fn more_clusters_than_queues_spread_proportionally() {
        let c = Controller::new(RankingAlgorithm::NumPackets, 2);
        let s = stats(&[(1, 1), (2, 1), (3, 1), (4, 1)]);
        let sizes = vec![Some(1.0); 4];
        let q = c.assign_queues(&s, &sizes);
        assert_eq!(q, vec![0, 0, 1, 1]);
    }

    #[test]
    fn empty_slots_rank_best() {
        let c = Controller::new(RankingAlgorithm::Throughput, 3);
        let s = stats(&[(0, 0), (10, 10_000), (5, 3_000)]);
        let sizes = vec![None, Some(1.0), Some(1.0)];
        let q = c.assign_queues(&s, &sizes);
        assert_eq!(q[0], 0);
        assert_eq!(q[1], 2);
        assert_eq!(q[2], 1);
    }

    #[test]
    fn pinning_overrides_scores() {
        let mut c = Controller::new(RankingAlgorithm::Throughput, 4);
        c.pin(1, 0); // cluster 1 is known-benign
        let s = stats(&[(10, 100), (10, 1_000_000), (10, 500), (10, 200)]);
        let sizes = vec![Some(1.0); 4];
        let q = c.assign_queues(&s, &sizes);
        assert_eq!(q[1], 0, "pin must win over the score");
        c.unpin(1);
        let q = c.assign_queues(&s, &sizes);
        assert_eq!(q[1], 3);
    }

    #[test]
    fn ties_break_deterministically() {
        let c = Controller::new(RankingAlgorithm::Throughput, 4);
        let s = stats(&[(1, 100), (1, 100), (1, 100), (1, 100)]);
        let sizes = vec![Some(1.0); 4];
        assert_eq!(c.assign_queues(&s, &sizes), vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "at least one priority queue")]
    fn zero_queues_rejected() {
        let _ = Controller::new(RankingAlgorithm::Throughput, 0);
    }

    #[test]
    fn traced_assignment_records_the_mapping() {
        use accturbo_obs::RingTracer;
        let c = Controller::new(RankingAlgorithm::Throughput, 4);
        let s = stats(&[(10, 1_000), (10, 100_000), (10, 10_000), (10, 500)]);
        let sizes = vec![Some(1.0); 4];
        let mut t = RingTracer::new(8);
        let q = c.assign_queues_traced(&s, &sizes, &mut t, 7);
        assert_eq!(q, c.assign_queues(&s, &sizes));
        let jsonl = t.to_jsonl();
        assert_eq!(
            jsonl,
            "{\"ts\":7,\"ev\":\"priority_remap\",\"mapping\":[1,3,2,0]}\n"
        );
    }
}
