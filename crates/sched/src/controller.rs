//! The control-plane priority mapper (paper §5.2).
//!
//! Each control period the controller (i) polls per-cluster statistics
//! from the data plane, (ii) scores every cluster with a ranking
//! algorithm, and (iii) derives the cluster → priority-queue mapping that
//! the data plane applies to subsequent packets. Least-malicious clusters
//! get the highest priority (queue 0); when there are more clusters than
//! queues the mapping spreads rank-proportionally.

use crate::rank::RankingAlgorithm;
use accturbo_clustering::WindowStats;
use accturbo_obs::{Event, Tracer};
use std::collections::HashMap;

/// Derives cluster → queue mappings from polled statistics.
#[derive(Debug, Clone)]
pub struct Controller {
    ranking: RankingAlgorithm,
    num_queues: usize,
    /// Operator overrides (§10): cluster index → pinned queue.
    pinned: HashMap<usize, usize>,
    /// Reusable rank-order buffer for the allocation-free control path.
    scratch_order: Vec<usize>,
    /// Reusable score buffer for the allocation-free control path.
    scratch_scores: Vec<f64>,
}

impl Controller {
    /// Creates a controller using `ranking` over `num_queues` priority
    /// queues. Panics when `num_queues` is zero.
    pub fn new(ranking: RankingAlgorithm, num_queues: usize) -> Self {
        assert!(num_queues > 0, "need at least one priority queue");
        Controller {
            ranking,
            num_queues,
            pinned: HashMap::new(),
            scratch_order: Vec::new(),
            scratch_scores: Vec::new(),
        }
    }

    /// The ranking algorithm in use.
    pub fn ranking(&self) -> RankingAlgorithm {
        self.ranking
    }

    /// Number of priority queues.
    pub fn num_queues(&self) -> usize {
        self.num_queues
    }

    /// Pins `cluster` to `queue` regardless of its score — the operator
    /// override of §10 (e.g. a dedicated queue for known-benign traffic).
    pub fn pin(&mut self, cluster: usize, queue: usize) {
        assert!(queue < self.num_queues, "pinned queue out of range");
        self.pinned.insert(cluster, queue);
    }

    /// Removes a pin.
    pub fn unpin(&mut self, cluster: usize) {
        self.pinned.remove(&cluster);
    }

    /// Computes the cluster → queue mapping for this period.
    ///
    /// `stats[i]` and `sizes[i]` describe cluster `i` (`sizes[i] = None`
    /// for empty slots). Returns one queue index per cluster.
    pub fn assign_queues(&self, stats: &[WindowStats], sizes: &[Option<f64>]) -> Vec<usize> {
        let mut order = Vec::new();
        let mut scores = Vec::new();
        let mut queues = Vec::new();
        fill_queues(
            self.ranking,
            self.num_queues,
            &self.pinned,
            stats,
            sizes,
            &mut order,
            &mut scores,
            &mut queues,
        );
        queues
    }

    /// Allocation-free variant of [`assign_queues`](Self::assign_queues):
    /// writes the mapping into `out` (cleared first), reusing internal
    /// scratch buffers across calls. Produces exactly the same mapping.
    pub fn assign_queues_into(
        &mut self,
        stats: &[WindowStats],
        sizes: &[Option<f64>],
        out: &mut Vec<usize>,
    ) {
        let mut order = std::mem::take(&mut self.scratch_order);
        let mut scores = std::mem::take(&mut self.scratch_scores);
        fill_queues(
            self.ranking,
            self.num_queues,
            &self.pinned,
            stats,
            sizes,
            &mut order,
            &mut scores,
            out,
        );
        self.scratch_order = order;
        self.scratch_scores = scores;
    }

    /// Like [`assign_queues`](Self::assign_queues), but emits a
    /// `priority_remap` trace event at `now_ns` carrying the new mapping.
    pub fn assign_queues_traced<T: Tracer + ?Sized>(
        &self,
        stats: &[WindowStats],
        sizes: &[Option<f64>],
        tracer: &mut T,
        now_ns: u64,
    ) -> Vec<usize> {
        let queues = self.assign_queues(stats, sizes);
        if tracer.enabled() {
            tracer.record(now_ns, &Event::PriorityRemap { mapping: &queues });
        }
        queues
    }

    /// Traced counterpart of
    /// [`assign_queues_into`](Self::assign_queues_into).
    pub fn assign_queues_traced_into<T: Tracer + ?Sized>(
        &mut self,
        stats: &[WindowStats],
        sizes: &[Option<f64>],
        tracer: &mut T,
        now_ns: u64,
        out: &mut Vec<usize>,
    ) {
        self.assign_queues_into(stats, sizes, out);
        if tracer.enabled() {
            tracer.record(now_ns, &Event::PriorityRemap { mapping: out });
        }
    }
}

/// The shared mapping kernel: ranks clusters by ascending score (stable
/// tie-break on index), spreads ranks rank-proportionally over the
/// queues, then applies operator pins. All output buffers are cleared
/// and refilled, never reallocated once warm.
#[allow(clippy::too_many_arguments)]
fn fill_queues(
    ranking: RankingAlgorithm,
    num_queues: usize,
    pinned: &HashMap<usize, usize>,
    stats: &[WindowStats],
    sizes: &[Option<f64>],
    order: &mut Vec<usize>,
    scores: &mut Vec<f64>,
    queues: &mut Vec<usize>,
) {
    assert_eq!(stats.len(), sizes.len(), "stats/sizes arity mismatch");
    let n = stats.len();
    order.clear();
    order.extend(0..n);
    scores.clear();
    scores.extend((0..n).map(|i| ranking.score(&stats[i], sizes[i])));
    // Ascending score: best behaved first. Stable tie-break on index.
    order.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .expect("scores are finite")
            .then(a.cmp(&b))
    });

    queues.clear();
    queues.resize(n, 0usize);
    for (rank, &cluster) in order.iter().enumerate() {
        // Spread ranks over the queues proportionally.
        queues[cluster] = rank * num_queues / n.max(1);
    }
    for (&cluster, &queue) in pinned {
        if cluster < n {
            queues[cluster] = queue;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(v: &[(u64, u64)]) -> Vec<WindowStats> {
        v.iter()
            .map(|&(pkts, bytes)| WindowStats { pkts, bytes })
            .collect()
    }

    #[test]
    fn highest_rate_cluster_gets_worst_queue() {
        let c = Controller::new(RankingAlgorithm::Throughput, 4);
        let s = stats(&[(10, 1_000), (10, 100_000), (10, 10_000), (10, 500)]);
        let sizes = vec![Some(1.0); 4];
        let q = c.assign_queues(&s, &sizes);
        assert_eq!(q[1], 3, "heaviest cluster must be deprioritized");
        assert_eq!(q[3], 0, "lightest cluster must keep top priority");
        assert_eq!(q, vec![1, 3, 2, 0]);
    }

    #[test]
    fn more_clusters_than_queues_spread_proportionally() {
        let c = Controller::new(RankingAlgorithm::NumPackets, 2);
        let s = stats(&[(1, 1), (2, 1), (3, 1), (4, 1)]);
        let sizes = vec![Some(1.0); 4];
        let q = c.assign_queues(&s, &sizes);
        assert_eq!(q, vec![0, 0, 1, 1]);
    }

    #[test]
    fn empty_slots_rank_best() {
        let c = Controller::new(RankingAlgorithm::Throughput, 3);
        let s = stats(&[(0, 0), (10, 10_000), (5, 3_000)]);
        let sizes = vec![None, Some(1.0), Some(1.0)];
        let q = c.assign_queues(&s, &sizes);
        assert_eq!(q[0], 0);
        assert_eq!(q[1], 2);
        assert_eq!(q[2], 1);
    }

    #[test]
    fn pinning_overrides_scores() {
        let mut c = Controller::new(RankingAlgorithm::Throughput, 4);
        c.pin(1, 0); // cluster 1 is known-benign
        let s = stats(&[(10, 100), (10, 1_000_000), (10, 500), (10, 200)]);
        let sizes = vec![Some(1.0); 4];
        let q = c.assign_queues(&s, &sizes);
        assert_eq!(q[1], 0, "pin must win over the score");
        c.unpin(1);
        let q = c.assign_queues(&s, &sizes);
        assert_eq!(q[1], 3);
    }

    #[test]
    fn ties_break_deterministically() {
        let c = Controller::new(RankingAlgorithm::Throughput, 4);
        let s = stats(&[(1, 100), (1, 100), (1, 100), (1, 100)]);
        let sizes = vec![Some(1.0); 4];
        assert_eq!(c.assign_queues(&s, &sizes), vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "at least one priority queue")]
    fn zero_queues_rejected() {
        let _ = Controller::new(RankingAlgorithm::Throughput, 0);
    }

    #[test]
    fn into_variant_matches_allocating_variant() {
        let mut c = Controller::new(RankingAlgorithm::Throughput, 4);
        c.pin(2, 1);
        let mut out = Vec::new();
        for round in 0..5u64 {
            let s = stats(&[
                (10 + round, 1_000 * (round + 1)),
                (10, 100_000 / (round + 1)),
                (10, 10_000),
                (0, 0),
            ]);
            let sizes = vec![Some(1.0), Some(2.0), Some(0.5), None];
            let expected = c.assign_queues(&s, &sizes);
            c.assign_queues_into(&s, &sizes, &mut out);
            assert_eq!(out, expected, "round {round}");
        }
    }

    #[test]
    fn traced_assignment_records_the_mapping() {
        use accturbo_obs::RingTracer;
        let c = Controller::new(RankingAlgorithm::Throughput, 4);
        let s = stats(&[(10, 1_000), (10, 100_000), (10, 10_000), (10, 500)]);
        let sizes = vec![Some(1.0); 4];
        let mut t = RingTracer::new(8);
        let q = c.assign_queues_traced(&s, &sizes, &mut t, 7);
        assert_eq!(q, c.assign_queues(&s, &sizes));
        let jsonl = t.to_jsonl();
        assert_eq!(
            jsonl,
            "{\"ts\":7,\"ev\":\"priority_remap\",\"mapping\":[1,3,2,0]}\n"
        );
    }
}
