//! SP-PIFO: approximating PIFO behaviour with strict-priority queues.
//!
//! The paper builds its scheduler on priority queues and notes (§5.2,
//! citing Gran Alcoz et al., NSDI 2020) that rank-based scheduling can be
//! approximated on them. SP-PIFO is that approximation: each queue keeps
//! a *queue bound*; an arriving packet is scanned bottom-up and enqueued
//! into the first queue whose bound is ≤ its rank, pushing the bound up.
//! When a packet's rank is smaller than even the last bound (an
//! "unpifoness" event), all bounds are pushed down by the difference.
//!
//! This gives ACC-Turbo an alternative data-plane mitigation: instead of
//! the control plane mapping clusters to queues each period, every packet
//! can carry a rank (e.g. its cluster's last-polled score) and be
//! scheduled by SP-PIFO directly.

use accturbo_netsim::{Dropped, Packet, PriorityBank, QueueDiscipline, SimTime};

/// An SP-PIFO scheduler over `n` strict-priority queues.
#[derive(Debug, Clone)]
pub struct SpPifo {
    bank: PriorityBank,
    /// Per-queue bounds; queue 0 (highest priority) has the smallest.
    bounds: Vec<u64>,
    unpifoness_events: u64,
}

impl SpPifo {
    /// Creates an SP-PIFO over `n` queues of `cap_bytes_each`.
    pub fn new(n: usize, cap_bytes_each: u64) -> Self {
        assert!(n > 0, "SP-PIFO needs at least one queue");
        SpPifo {
            bank: PriorityBank::new(n, cap_bytes_each),
            bounds: vec![0; n],
            unpifoness_events: 0,
        }
    }

    /// Number of queues.
    pub fn num_queues(&self) -> usize {
        self.bounds.len()
    }

    /// The current queue bounds (monotone nondecreasing by construction).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Times the push-down stage ran (inversions detected at the head).
    pub fn unpifoness_events(&self) -> u64 {
        self.unpifoness_events
    }

    /// Enqueues `pkt` with `rank` (lower = higher priority) following the
    /// SP-PIFO mapping.
    pub fn enqueue_ranked(
        &mut self,
        pkt: Packet,
        rank: u64,
        now: SimTime,
        drops: &mut Vec<Dropped>,
    ) {
        let n = self.bounds.len();
        // Scan from the lowest-priority queue up: take the first queue
        // whose bound is ≤ rank.
        for q in (0..n).rev() {
            if self.bounds[q] <= rank {
                self.bounds[q] = rank;
                self.bank.enqueue_to(q, pkt, now, drops);
                return;
            }
        }
        // rank < bounds[0]: a higher-priority packet than any bound —
        // push-down: decrease every bound by the violation amount, then
        // enqueue into the highest-priority queue.
        let cost = self.bounds[0] - rank;
        for b in &mut self.bounds {
            *b = b.saturating_sub(cost);
        }
        self.unpifoness_events += 1;
        self.bank.enqueue_to(0, pkt, now, drops);
    }

    /// Dequeues the next packet in strict priority order.
    pub fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
        self.bank.dequeue(now)
    }

    /// Total packets buffered.
    pub fn len_pkts(&self) -> usize {
        self.bank.len_pkts()
    }

    /// Total bytes buffered.
    pub fn len_bytes(&self) -> u64 {
        self.bank.len_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(seq: u64) -> Packet {
        let mut p = Packet::new(SimTime::ZERO).with_size(100);
        p.seq = seq;
        p
    }

    fn drain_ranks(sp: &mut SpPifo, ranks: &[u64]) -> Vec<u64> {
        std::iter::from_fn(|| sp.dequeue(SimTime::ZERO))
            .map(|p| ranks[p.seq as usize])
            .collect()
    }

    #[test]
    fn sorted_input_is_scheduled_perfectly() {
        let mut sp = SpPifo::new(4, 10_000);
        let ranks: Vec<u64> = (0..16).collect();
        let mut drops = Vec::new();
        for (i, &r) in ranks.iter().enumerate() {
            sp.enqueue_ranked(pkt(i as u64), r, SimTime::ZERO, &mut drops);
        }
        let out = drain_ranks(&mut sp, &ranks);
        let mut sorted = out.clone();
        sorted.sort();
        assert_eq!(out, sorted, "already-sorted arrivals must stay sorted");
        assert_eq!(sp.unpifoness_events(), 0);
    }

    #[test]
    fn two_rank_classes_separate_exactly() {
        // The ACC-Turbo use case: a benign rank and an attack rank.
        let mut sp = SpPifo::new(2, 100_000);
        let mut ranks = Vec::new();
        let mut drops = Vec::new();
        for i in 0..100u64 {
            let r = if i % 3 == 0 { 10 } else { 1 };
            ranks.push(r);
            sp.enqueue_ranked(pkt(i), r, SimTime::ZERO, &mut drops);
        }
        let out = drain_ranks(&mut sp, &ranks);
        // After the adaptation warms up, all rank-1 packets leave before
        // rank-10 packets (allowing the first few inversions).
        let first_high = out.iter().position(|&r| r == 10).expect("highs exist");
        let lows_after_first_high = out[first_high..].iter().filter(|&&r| r == 1).count();
        assert!(
            lows_after_first_high <= 2,
            "{lows_after_first_high} low-rank packets scheduled behind high ranks"
        );
    }

    #[test]
    fn push_down_recovers_from_rank_drift() {
        let mut sp = SpPifo::new(4, 100_000);
        let mut drops = Vec::new();
        // Descending ranks fill every queue's bound from the bottom up.
        for (i, r) in [1_000u64, 900, 800, 700].into_iter().enumerate() {
            sp.enqueue_ranked(pkt(i as u64), r, SimTime::ZERO, &mut drops);
        }
        assert_eq!(sp.bounds(), &[700, 800, 900, 1_000]);
        // A rank below every bound triggers the push-down stage.
        sp.enqueue_ranked(pkt(4), 5, SimTime::ZERO, &mut drops);
        assert_eq!(sp.unpifoness_events(), 1);
        assert_eq!(sp.bounds(), &[5, 105, 205, 305]);
    }

    #[test]
    fn bounds_stay_monotone() {
        let mut sp = SpPifo::new(8, 100_000);
        let mut drops = Vec::new();
        let mut x = 12345u64;
        for i in 0..5_000u64 {
            // Deterministic pseudo-random ranks.
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            sp.enqueue_ranked(pkt(i), x % 1000, SimTime::ZERO, &mut drops);
            for w in sp.bounds().windows(2) {
                assert!(
                    w[0] <= w[1],
                    "bounds must be nondecreasing: {:?}",
                    sp.bounds()
                );
            }
            if i % 3 == 0 {
                sp.dequeue(SimTime::ZERO);
            }
        }
    }

    #[test]
    fn approximates_pifo_order_on_random_ranks() {
        // Measure inversions against a perfect PIFO: SP-PIFO with 8
        // queues should invert only a small fraction of pairs.
        let mut sp = SpPifo::new(8, 10_000_000);
        let mut drops = Vec::new();
        let mut ranks = Vec::new();
        let mut x = 7u64;
        for i in 0..2_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = x % 256;
            ranks.push(r);
            sp.enqueue_ranked(pkt(i), r, SimTime::ZERO, &mut drops);
        }
        let out = drain_ranks(&mut sp, &ranks);
        let mut inversions = 0u64;
        let mut total = 0u64;
        for i in 0..out.len() {
            for j in (i + 1)..out.len() {
                total += 1;
                if out[i] > out[j] {
                    inversions += 1;
                }
            }
        }
        let frac = inversions as f64 / total as f64;
        // A single FIFO queue inverts ~50% of random-rank pairs; a perfect
        // PIFO inverts none. Eight adapting queues land far below half
        // (within-queue FIFO mixing plus boundary drift keeps it nonzero).
        assert!(
            frac < 0.25,
            "inversion fraction {frac:.3} too high for 8 queues"
        );
    }
}
