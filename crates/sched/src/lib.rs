//! # accturbo-sched
//!
//! The mitigation half of ACC-Turbo (paper §5): ranking algorithms that
//! score cluster maliciousness from polled data-plane statistics, and the
//! control-plane [`Controller`] that maps clusters to strict-priority
//! queues each period. The queues themselves live in
//! [`accturbo_netsim::PriorityBank`]; the full switch pipeline that ties
//! clustering + ranking + queues together is in `accturbo-core`.

#![deny(missing_docs)]

pub mod controller;
pub mod degrade;
pub mod rank;
pub mod sppifo;

pub use controller::Controller;
pub use degrade::{
    DegradationConfig, DegradationCounters, DegradationPolicy, DegradeAction, FallbackMode,
};
pub use rank::RankingAlgorithm;
pub use sppifo::SpPifo;
