//! Graceful degradation under control-plane faults (DESIGN.md §9).
//!
//! The paper's mitigation loop assumes the control plane polls the data
//! plane every period; the fault plane (`accturbo_netsim::fault`) breaks
//! that assumption by suppressing, delaying, or staling ticks. The
//! [`DegradationPolicy`] here decides what the defense does instead of
//! failing: keep the last-good cluster → queue mapping while the control
//! view is fresh enough, and fall back to a scheduler that needs no
//! control plane at all once it is not.

/// The control-plane-free scheduler a defense falls back to once its
/// cluster view is older than the staleness bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackMode {
    /// Collapse to a single FIFO: every cluster maps to queue 0. No
    /// prioritization, but no decisions made on stale evidence either.
    Fifo,
    /// Keep strict priority with a static identity mapping
    /// (cluster `c` → queue `c % num_queues`): arbitrary but stable, so
    /// no aggregate is starved by a frozen malicious-looking score.
    StrictPriority,
}

impl FallbackMode {
    /// The tag used in `degrade` obs events and figure output.
    pub fn name(self) -> &'static str {
        match self {
            FallbackMode::Fifo => "fifo",
            FallbackMode::StrictPriority => "strict_priority",
        }
    }
}

/// Bounded-staleness policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct DegradationConfig {
    /// Maximum age of the last good control tick before the policy gives
    /// up on the frozen mapping and falls back.
    pub max_staleness_ns: u64,
    /// What to fall back to once the bound is exceeded.
    pub fallback: FallbackMode,
}

impl Default for DegradationConfig {
    /// One second of staleness tolerance, then FIFO — conservative enough
    /// that a single missed tick never changes scheduling behaviour.
    fn default() -> Self {
        DegradationConfig {
            max_staleness_ns: 1_000_000_000,
            fallback: FallbackMode::Fifo,
        }
    }
}

/// What the defense should do at a degraded control-plane event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeAction {
    /// The last-good mapping is still within the staleness bound: keep it
    /// deployed unchanged.
    KeepLastGood,
    /// The bound is exceeded: deploy the fallback scheduler.
    Fallback(FallbackMode),
}

impl DegradeAction {
    /// The tag used in `degrade` obs events.
    pub fn name(self) -> &'static str {
        match self {
            DegradeAction::KeepLastGood => "keep_last_good",
            DegradeAction::Fallback(m) => m.name(),
        }
    }
}

/// Tracks control-view freshness and decides between keeping the
/// last-good mapping and falling back (bounded staleness).
///
/// The policy is pure bookkeeping over integer nanoseconds — it owns no
/// scheduler state itself. The defense reports every good, missed, and
/// stale tick; the returned [`DegradeAction`] tells it what to deploy.
#[derive(Debug, Clone, Copy)]
pub struct DegradationPolicy {
    cfg: DegradationConfig,
    /// Time of the last control tick that ran on fresh statistics, or
    /// `None` before the first one.
    last_good_ns: Option<u64>,
    /// Ticks missed or stale since the last good one.
    consecutive_missed: u64,
    /// Lifetime counters for figures and tests.
    total_missed: u64,
    total_stale: u64,
    fallbacks: u64,
}

impl DegradationPolicy {
    /// A policy with the given staleness bound and fallback.
    pub fn new(cfg: DegradationConfig) -> Self {
        DegradationPolicy {
            cfg,
            last_good_ns: None,
            consecutive_missed: 0,
            total_missed: 0,
            total_stale: 0,
            fallbacks: 0,
        }
    }

    /// The configured knobs.
    pub fn config(&self) -> DegradationConfig {
        self.cfg
    }

    /// A control tick ran on fresh statistics at `now_ns`: the view is
    /// good again and any fallback is lifted.
    pub fn on_good_tick(&mut self, now_ns: u64) {
        self.last_good_ns = Some(now_ns);
        self.consecutive_missed = 0;
    }

    /// A control tick was suppressed at `now_ns`. Returns what to deploy.
    pub fn on_missed_tick(&mut self, now_ns: u64) -> DegradeAction {
        self.total_missed += 1;
        self.note_bad(now_ns)
    }

    /// A control tick ran but saw a stale snapshot at `now_ns`. The
    /// mapping it would derive is built on old evidence, so it counts
    /// against the staleness bound exactly like a missed tick.
    pub fn on_stale_tick(&mut self, now_ns: u64) -> DegradeAction {
        self.total_stale += 1;
        self.note_bad(now_ns)
    }

    fn note_bad(&mut self, now_ns: u64) -> DegradeAction {
        self.consecutive_missed += 1;
        let stale = match self.last_good_ns {
            // Never had a good tick: age is measured from time zero.
            None => now_ns,
            Some(good) => now_ns.saturating_sub(good),
        };
        if stale > self.cfg.max_staleness_ns {
            self.fallbacks += 1;
            DegradeAction::Fallback(self.cfg.fallback)
        } else {
            DegradeAction::KeepLastGood
        }
    }

    /// Ticks missed or stale since the last good tick.
    pub fn consecutive_missed(&self) -> u64 {
        self.consecutive_missed
    }

    /// Lifetime count of suppressed ticks reported.
    pub fn total_missed(&self) -> u64 {
        self.total_missed
    }

    /// Lifetime count of stale ticks reported.
    pub fn total_stale(&self) -> u64 {
        self.total_stale
    }

    /// Lifetime count of decisions that fell back.
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks
    }

    /// All lifetime counters at once — the shape the streaming telemetry
    /// layer exports as per-period gauges.
    pub fn counters(&self) -> DegradationCounters {
        DegradationCounters {
            consecutive_missed: self.consecutive_missed,
            total_missed: self.total_missed,
            total_stale: self.total_stale,
            fallbacks: self.fallbacks,
        }
    }
}

/// A plain snapshot of a [`DegradationPolicy`]'s lifetime counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DegradationCounters {
    /// Ticks missed or stale since the last good tick.
    pub consecutive_missed: u64,
    /// Lifetime count of suppressed ticks reported.
    pub total_missed: u64,
    /// Lifetime count of stale ticks reported.
    pub total_stale: u64,
    /// Lifetime count of decisions that fell back.
    pub fallbacks: u64,
}

impl Default for DegradationPolicy {
    fn default() -> Self {
        DegradationPolicy::new(DegradationConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    #[test]
    fn fresh_view_keeps_the_last_good_mapping() {
        let mut p = DegradationPolicy::new(DegradationConfig {
            max_staleness_ns: 500 * MS,
            fallback: FallbackMode::Fifo,
        });
        p.on_good_tick(100 * MS);
        assert_eq!(p.on_missed_tick(200 * MS), DegradeAction::KeepLastGood);
        assert_eq!(p.on_missed_tick(400 * MS), DegradeAction::KeepLastGood);
        assert_eq!(p.consecutive_missed(), 2);
        assert_eq!(p.fallbacks(), 0);
    }

    #[test]
    fn exceeding_the_bound_falls_back() {
        let mut p = DegradationPolicy::new(DegradationConfig {
            max_staleness_ns: 500 * MS,
            fallback: FallbackMode::StrictPriority,
        });
        p.on_good_tick(100 * MS);
        assert_eq!(
            p.on_missed_tick(700 * MS),
            DegradeAction::Fallback(FallbackMode::StrictPriority)
        );
        assert_eq!(p.fallbacks(), 1);
    }

    #[test]
    fn a_good_tick_lifts_the_fallback() {
        let mut p = DegradationPolicy::new(DegradationConfig {
            max_staleness_ns: 100 * MS,
            fallback: FallbackMode::Fifo,
        });
        p.on_good_tick(0);
        assert_eq!(
            p.on_missed_tick(500 * MS),
            DegradeAction::Fallback(FallbackMode::Fifo)
        );
        p.on_good_tick(600 * MS);
        assert_eq!(p.consecutive_missed(), 0);
        assert_eq!(p.on_missed_tick(650 * MS), DegradeAction::KeepLastGood);
    }

    #[test]
    fn stale_ticks_count_like_missed_ticks() {
        let mut p = DegradationPolicy::new(DegradationConfig {
            max_staleness_ns: 100 * MS,
            fallback: FallbackMode::Fifo,
        });
        p.on_good_tick(0);
        assert_eq!(p.on_stale_tick(50 * MS), DegradeAction::KeepLastGood);
        assert_eq!(
            p.on_stale_tick(200 * MS),
            DegradeAction::Fallback(FallbackMode::Fifo)
        );
        assert_eq!(p.total_stale(), 2);
        assert_eq!(p.total_missed(), 0);
    }

    #[test]
    fn missing_ticks_before_any_good_one_ages_from_zero() {
        let mut p = DegradationPolicy::new(DegradationConfig {
            max_staleness_ns: 100 * MS,
            fallback: FallbackMode::Fifo,
        });
        assert_eq!(p.on_missed_tick(50 * MS), DegradeAction::KeepLastGood);
        assert_eq!(
            p.on_missed_tick(150 * MS),
            DegradeAction::Fallback(FallbackMode::Fifo)
        );
    }

    #[test]
    fn names_are_stable_tags() {
        assert_eq!(FallbackMode::Fifo.name(), "fifo");
        assert_eq!(FallbackMode::StrictPriority.name(), "strict_priority");
        assert_eq!(DegradeAction::KeepLastGood.name(), "keep_last_good");
        assert_eq!(
            DegradeAction::Fallback(FallbackMode::StrictPriority).name(),
            "strict_priority"
        );
    }
}
