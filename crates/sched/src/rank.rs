//! Ranking algorithms (paper §5.1).
//!
//! A ranking algorithm scores each cluster's *maliciousness* from the
//! statistics the data plane exposes: its arrival rate (byte and packet
//! counters) and its size (the cost `δ(c)`, a proxy for packet
//! similarity — small cluster + high rate = highly self-similar traffic).
//! Higher score = more likely attack = lower scheduling priority. The
//! paper proposes four instances, all implemented here and compared in
//! Fig. 11a.

use accturbo_clustering::WindowStats;

/// The ranking algorithms of §5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RankingAlgorithm {
    /// `rank(p) = throughput(c)` — bytes per window.
    Throughput,
    /// `rank(p) = num_packets(c)` — packets per window ("N.P.").
    NumPackets,
    /// `rank(p) = throughput(c) / size(c)` — rate density ("Th./Size").
    ThroughputOverSize,
    /// `rank(p) = num_packets(c) / size(c)` ("N.P./Size").
    NumPacketsOverSize,
}

impl RankingAlgorithm {
    /// All algorithms, in Fig. 11a's order.
    pub const ALL: [RankingAlgorithm; 4] = [
        RankingAlgorithm::NumPackets,
        RankingAlgorithm::Throughput,
        RankingAlgorithm::NumPacketsOverSize,
        RankingAlgorithm::ThroughputOverSize,
    ];

    /// Display label matching Fig. 11a.
    pub fn name(self) -> &'static str {
        match self {
            RankingAlgorithm::NumPackets => "N.P.",
            RankingAlgorithm::Throughput => "Th.",
            RankingAlgorithm::NumPacketsOverSize => "N.P./Size",
            RankingAlgorithm::ThroughputOverSize => "Th./Size",
        }
    }

    /// Scores one cluster. `stats` are the window counters the control
    /// plane polled; `size` is the cluster's cost `δ(c)` (`None` for an
    /// empty slot, which scores zero). Higher = more malicious.
    pub fn score(self, stats: &WindowStats, size: Option<f64>) -> f64 {
        let Some(size) = size else {
            return 0.0;
        };
        // +1 keeps tight single-point clusters (size 0) finite while
        // preserving the ordering the paper intends: among equal rates,
        // the *smaller* (more self-similar) cluster ranks worse.
        let denom = size + 1.0;
        match self {
            RankingAlgorithm::Throughput => stats.bytes as f64,
            RankingAlgorithm::NumPackets => stats.pkts as f64,
            RankingAlgorithm::ThroughputOverSize => stats.bytes as f64 / denom,
            RankingAlgorithm::NumPacketsOverSize => stats.pkts as f64 / denom,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(pkts: u64, bytes: u64) -> WindowStats {
        WindowStats { pkts, bytes }
    }

    #[test]
    fn throughput_orders_by_bytes() {
        let alg = RankingAlgorithm::Throughput;
        let hi = alg.score(&stats(10, 10_000), Some(5.0));
        let lo = alg.score(&stats(100, 1_000), Some(5.0));
        assert!(hi > lo);
    }

    #[test]
    fn num_packets_orders_by_packets() {
        let alg = RankingAlgorithm::NumPackets;
        let hi = alg.score(&stats(100, 1_000), Some(5.0));
        let lo = alg.score(&stats(10, 10_000), Some(5.0));
        assert!(hi > lo);
    }

    #[test]
    fn size_division_penalizes_self_similarity() {
        // Same rate; the tighter cluster must rank worse (more malicious).
        let alg = RankingAlgorithm::ThroughputOverSize;
        let tight = alg.score(&stats(100, 100_000), Some(2.0));
        let broad = alg.score(&stats(100, 100_000), Some(50_000.0));
        assert!(tight > broad);
    }

    #[test]
    fn empty_slot_scores_zero() {
        for alg in RankingAlgorithm::ALL {
            assert_eq!(alg.score(&stats(100, 100_000), None), 0.0);
        }
    }

    #[test]
    fn zero_size_cluster_is_finite() {
        let alg = RankingAlgorithm::ThroughputOverSize;
        let s = alg.score(&stats(10, 1_000), Some(0.0));
        assert!(s.is_finite());
        assert_eq!(s, 1_000.0);
    }

    #[test]
    fn names_match_figure() {
        assert_eq!(RankingAlgorithm::NumPackets.name(), "N.P.");
        assert_eq!(RankingAlgorithm::ThroughputOverSize.name(), "Th./Size");
    }
}
