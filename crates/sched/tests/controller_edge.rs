//! Controller edge cases surfaced by fault injection: a faulted control
//! plane can poll mid-reset and hand the controller empty or all-idle
//! cluster views. Mapping derivation must stay total (no panic, sane
//! output) on those inputs.

use accturbo_clustering::WindowStats;
use accturbo_sched::{Controller, RankingAlgorithm};

fn all_rankings() -> [RankingAlgorithm; 4] {
    [
        RankingAlgorithm::Throughput,
        RankingAlgorithm::NumPackets,
        RankingAlgorithm::ThroughputOverSize,
        RankingAlgorithm::NumPacketsOverSize,
    ]
}

/// Zero clusters (a poll racing the clusterer's reset): the mapping is
/// empty, for every ranking algorithm and both entry points.
#[test]
fn empty_cluster_view_maps_to_nothing() {
    for ranking in all_rankings() {
        let mut c = Controller::new(ranking, 8);
        assert!(c.assign_queues(&[], &[]).is_empty());
        // The into-variant must also clear stale output from a previous
        // period, not leave the old mapping in place.
        let mut out = vec![3, 1, 4, 1, 5];
        c.assign_queues_into(&[], &[], &mut out);
        assert!(out.is_empty(), "stale mapping survived an empty poll");
    }
}

/// All-idle slots (`sizes[i] = None` everywhere): every cluster still
/// gets a valid queue index.
#[test]
fn all_idle_slots_still_map_to_valid_queues() {
    for ranking in all_rankings() {
        let c = Controller::new(ranking, 4);
        let stats = vec![WindowStats::default(); 6];
        let sizes = vec![None; 6];
        let queues = c.assign_queues(&stats, &sizes);
        assert_eq!(queues.len(), 6);
        assert!(queues.iter().all(|&q| q < 4), "queue index out of range");
    }
}

/// A single queue degenerates to "everything in queue 0" regardless of
/// scores — the shape the FIFO fallback relies on.
#[test]
fn single_queue_controller_maps_everything_to_zero() {
    let c = Controller::new(RankingAlgorithm::Throughput, 1);
    let stats: Vec<WindowStats> = (0..5)
        .map(|i| WindowStats {
            pkts: i * 100,
            bytes: i * 100_000,
        })
        .collect();
    let sizes: Vec<Option<f64>> = (0..5).map(|i| Some(i as f64)).collect();
    assert!(c.assign_queues(&stats, &sizes).iter().all(|&q| q == 0));
}

/// A pin on a cluster index that the (shrunken) view no longer contains
/// must not panic or corrupt the mapping of the clusters that do exist.
#[test]
fn pin_beyond_the_view_is_ignored() {
    let mut c = Controller::new(RankingAlgorithm::Throughput, 4);
    c.pin(10, 2);
    let stats = vec![WindowStats::default(); 3];
    let sizes = vec![None; 3];
    let queues = c.assign_queues(&stats, &sizes);
    assert_eq!(queues.len(), 3);
    assert!(queues.iter().all(|&q| q < 4));
    c.unpin(10);
    assert_eq!(c.assign_queues(&stats, &sizes), queues);
}
