//! Property tests for the SP-PIFO scheduler invariants the fast path
//! relies on (the regression guard for the allocation-free enqueue/rank
//! path):
//!
//! 1. dequeue serves strictly by priority — within any drain, a packet
//!    from a lower-priority queue never precedes a packet that was
//!    sitting in a higher-priority queue,
//! 2. no packet is lost or duplicated across adversarial rank
//!    sequences, with both effectively-infinite and tiny buffers,
//! 3. queue bounds stay monotone nondecreasing through any interleaving
//!    of enqueues, push-downs and dequeues,
//! 4. the pairwise inversion fraction against a perfect PIFO is bounded
//!    and shrinks as the bank widens.

use accturbo_netsim::{Dropped, Packet, SimTime};
use accturbo_prng::{Rng, SeedableRng, StdRng};
use accturbo_sched::SpPifo;

fn pkt(seq: u64) -> Packet {
    let mut p = Packet::new(SimTime::ZERO).with_size(100);
    p.seq = seq;
    p
}

/// An adversarial rank stream: alternating sorted runs, reverse-sorted
/// runs (worst case for the bounds), constant bursts, and uniform noise.
fn adversarial_ranks(rng: &mut StdRng, n: usize) -> Vec<u64> {
    let mut ranks = Vec::with_capacity(n);
    while ranks.len() < n {
        let run = rng.gen_range(1..40usize).min(n - ranks.len());
        match rng.gen_range(0..4u32) {
            0 => {
                let start = rng.gen_range(0..4096u64);
                ranks.extend((0..run as u64).map(|i| start.saturating_add(i * 7)));
            }
            1 => {
                let start = rng.gen_range(0..4096u64);
                ranks.extend((0..run as u64).map(|i| start.saturating_sub(i * 7)));
            }
            2 => {
                let r = rng.gen_range(0..4096u64);
                ranks.extend(std::iter::repeat_n(r, run));
            }
            _ => ranks.extend((0..run).map(|_| rng.gen_range(0..4096u64))),
        }
    }
    ranks
}

/// Enqueues every rank, dequeuing with probability ~1/4 between
/// enqueues, then drains. Returns `(dequeued seqs in order, drops)`.
fn run_schedule(sp: &mut SpPifo, ranks: &[u64], rng: &mut StdRng) -> (Vec<u64>, Vec<Dropped>) {
    let mut out = Vec::new();
    let mut drops = Vec::new();
    for (i, &r) in ranks.iter().enumerate() {
        sp.enqueue_ranked(pkt(i as u64), r, SimTime::ZERO, &mut drops);
        for w in sp.bounds().windows(2) {
            assert!(w[0] <= w[1], "bounds not monotone: {:?}", sp.bounds());
        }
        if rng.gen_bool(0.25) {
            if let Some(p) = sp.dequeue(SimTime::ZERO) {
                out.push(p.seq);
            }
        }
    }
    while let Some(p) = sp.dequeue(SimTime::ZERO) {
        out.push(p.seq);
    }
    (out, drops)
}

#[test]
fn no_packet_lost_or_duplicated_with_ample_buffer() {
    for seed in 0..50u64 {
        let mut rng = StdRng::seed_from_u64(0x5EED ^ seed);
        let n = rng.gen_range(1..800usize);
        let ranks = adversarial_ranks(&mut rng, n);
        let mut sp = SpPifo::new(rng.gen_range(1..9usize), u64::MAX / 2);
        let (out, drops) = run_schedule(&mut sp, &ranks, &mut rng);
        assert!(drops.is_empty(), "seed {seed}: drops with an ample buffer");
        let mut seen = out.clone();
        seen.sort_unstable();
        let expected: Vec<u64> = (0..n as u64).collect();
        assert_eq!(seen, expected, "seed {seed}: lost or duplicated packets");
        assert_eq!(sp.len_pkts(), 0, "seed {seed}: drained scheduler is empty");
    }
}

#[test]
fn conservation_holds_under_overflow_drops() {
    for seed in 0..50u64 {
        let mut rng = StdRng::seed_from_u64(0xD80B ^ seed);
        let n = rng.gen_range(100..800usize);
        let ranks = adversarial_ranks(&mut rng, n);
        // Tiny per-queue buffers: a few packets each, so tail drops are
        // guaranteed under the bursts.
        let mut sp = SpPifo::new(rng.gen_range(1..9usize), rng.gen_range(200..1_200u64));
        let (out, drops) = run_schedule(&mut sp, &ranks, &mut rng);
        assert!(!drops.is_empty(), "seed {seed}: workload must overflow");
        let mut seen: Vec<u64> = out.clone();
        seen.extend(drops.iter().map(|d| d.packet.seq));
        seen.sort_unstable();
        let expected: Vec<u64> = (0..n as u64).collect();
        assert_eq!(
            seen, expected,
            "seed {seed}: dequeued + dropped must partition the arrivals"
        );
    }
}

#[test]
fn drain_serves_queues_in_strict_priority_order() {
    // With no interleaved enqueues, a full drain must never return to a
    // lower-priority (smaller-index) queue once it has moved past it.
    // Rank is not monotone across the drain (that is unpifoness), but
    // the *queue index* sequence is — recover it via the bounds walk:
    // enqueue remembering each packet's queue, then drain and check.
    for seed in 0..50u64 {
        let mut rng = StdRng::seed_from_u64(0xABCD ^ seed);
        let n = rng.gen_range(1..500usize);
        let ranks = adversarial_ranks(&mut rng, n);
        let mut sp = SpPifo::new(rng.gen_range(2..9usize), u64::MAX / 2);
        let mut drops = Vec::new();
        let mut queue_of = vec![usize::MAX; n];
        for (i, &r) in ranks.iter().enumerate() {
            // Mirror the SP-PIFO mapping to learn the chosen queue: the
            // first queue (bottom-up) whose bound is ≤ rank, else 0.
            let q = (0..sp.num_queues())
                .rev()
                .find(|&q| sp.bounds()[q] <= r)
                .unwrap_or(0);
            queue_of[i] = q;
            sp.enqueue_ranked(pkt(i as u64), r, SimTime::ZERO, &mut drops);
        }
        assert!(drops.is_empty());
        let mut last_queue = 0usize;
        while let Some(p) = sp.dequeue(SimTime::ZERO) {
            let q = queue_of[p.seq as usize];
            assert!(
                q >= last_queue,
                "seed {seed}: queue {q} served after queue {last_queue}"
            );
            last_queue = q;
        }
    }
}

/// Pairwise inversion count of `out` against a perfect PIFO.
fn inversions(out: &[u64]) -> u64 {
    let mut inv = 0u64;
    for i in 0..out.len() {
        for j in (i + 1)..out.len() {
            if out[i] > out[j] {
                inv += 1;
            }
        }
    }
    inv
}

#[test]
fn inversions_are_bounded_and_shrink_with_more_queues() {
    // Averaged over seeds, widening the bank must push the inversion
    // fraction down, and 8 queues must stay well under the ~50% of a
    // single FIFO.
    let frac = |queues: usize| -> f64 {
        let mut total_inv = 0u64;
        let mut total_pairs = 0u64;
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(0x1A4E ^ seed);
            let n = 600usize;
            let ranks = adversarial_ranks(&mut rng, n);
            let mut sp = SpPifo::new(queues, u64::MAX / 2);
            let mut drops = Vec::new();
            for (i, &r) in ranks.iter().enumerate() {
                sp.enqueue_ranked(pkt(i as u64), r, SimTime::ZERO, &mut drops);
            }
            let mut out_ranks = Vec::with_capacity(n);
            while let Some(p) = sp.dequeue(SimTime::ZERO) {
                out_ranks.push(ranks[p.seq as usize]);
            }
            total_inv += inversions(&out_ranks);
            total_pairs += (n as u64) * (n as u64 - 1) / 2;
        }
        total_inv as f64 / total_pairs as f64
    };
    let f1 = frac(1);
    let f4 = frac(4);
    let f8 = frac(8);
    assert!(f4 < f1, "4 queues ({f4:.3}) must beat 1 queue ({f1:.3})");
    assert!(f8 < f1, "8 queues ({f8:.3}) must beat 1 queue ({f1:.3})");
    // Adversarial reverse-sorted runs are SP-PIFO's worst case, so the
    // absolute bound is looser than the random-rank one in sppifo.rs —
    // but it must stay clearly below a single FIFO's ~50%.
    assert!(f8 < 0.4, "8-queue inversion fraction {f8:.3} unbounded");
}

#[test]
fn sorted_input_never_triggers_push_down() {
    let mut sp = SpPifo::new(4, u64::MAX / 2);
    let mut drops = Vec::new();
    for i in 0..200u64 {
        sp.enqueue_ranked(pkt(i), i * 3, SimTime::ZERO, &mut drops);
    }
    assert_eq!(sp.unpifoness_events(), 0);
    let mut prev = 0u64;
    let mut count = 0usize;
    while let Some(p) = sp.dequeue(SimTime::ZERO) {
        assert!(p.seq >= prev, "sorted arrivals must drain sorted");
        prev = p.seq;
        count += 1;
    }
    assert_eq!(count, 200);
}
