/root/repo/target/release/libaccturbo_runner.rlib: /root/repo/crates/runner/src/lib.rs
