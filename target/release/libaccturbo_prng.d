/root/repo/target/release/libaccturbo_prng.rlib: /root/repo/crates/prng/src/lib.rs
