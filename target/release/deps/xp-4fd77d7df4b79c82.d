/root/repo/target/release/deps/xp-4fd77d7df4b79c82.d: crates/experiments/src/main.rs

/root/repo/target/release/deps/xp-4fd77d7df4b79c82: crates/experiments/src/main.rs

crates/experiments/src/main.rs:
