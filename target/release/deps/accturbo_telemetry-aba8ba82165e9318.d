/root/repo/target/release/deps/accturbo_telemetry-aba8ba82165e9318.d: crates/telemetry/src/lib.rs crates/telemetry/src/reaction.rs crates/telemetry/src/report.rs crates/telemetry/src/score.rs

/root/repo/target/release/deps/libaccturbo_telemetry-aba8ba82165e9318.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/reaction.rs crates/telemetry/src/report.rs crates/telemetry/src/score.rs

/root/repo/target/release/deps/libaccturbo_telemetry-aba8ba82165e9318.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/reaction.rs crates/telemetry/src/report.rs crates/telemetry/src/score.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/reaction.rs:
crates/telemetry/src/report.rs:
crates/telemetry/src/score.rs:
