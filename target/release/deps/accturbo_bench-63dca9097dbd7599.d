/root/repo/target/release/deps/accturbo_bench-63dca9097dbd7599.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/accturbo_bench-63dca9097dbd7599: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
