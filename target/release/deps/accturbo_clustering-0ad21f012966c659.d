/root/repo/target/release/deps/accturbo_clustering-0ad21f012966c659.d: crates/clustering/src/lib.rs crates/clustering/src/bloom.rs crates/clustering/src/cluster.rs crates/clustering/src/eval.rs crates/clustering/src/feature.rs crates/clustering/src/hybrid.rs crates/clustering/src/kmeans.rs crates/clustering/src/online.rs

/root/repo/target/release/deps/libaccturbo_clustering-0ad21f012966c659.rlib: crates/clustering/src/lib.rs crates/clustering/src/bloom.rs crates/clustering/src/cluster.rs crates/clustering/src/eval.rs crates/clustering/src/feature.rs crates/clustering/src/hybrid.rs crates/clustering/src/kmeans.rs crates/clustering/src/online.rs

/root/repo/target/release/deps/libaccturbo_clustering-0ad21f012966c659.rmeta: crates/clustering/src/lib.rs crates/clustering/src/bloom.rs crates/clustering/src/cluster.rs crates/clustering/src/eval.rs crates/clustering/src/feature.rs crates/clustering/src/hybrid.rs crates/clustering/src/kmeans.rs crates/clustering/src/online.rs

crates/clustering/src/lib.rs:
crates/clustering/src/bloom.rs:
crates/clustering/src/cluster.rs:
crates/clustering/src/eval.rs:
crates/clustering/src/feature.rs:
crates/clustering/src/hybrid.rs:
crates/clustering/src/kmeans.rs:
crates/clustering/src/online.rs:
