/root/repo/target/release/deps/accturbo_telemetry-e53da7362052c44f.d: crates/telemetry/src/lib.rs crates/telemetry/src/reaction.rs crates/telemetry/src/report.rs crates/telemetry/src/score.rs

/root/repo/target/release/deps/libaccturbo_telemetry-e53da7362052c44f.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/reaction.rs crates/telemetry/src/report.rs crates/telemetry/src/score.rs

/root/repo/target/release/deps/libaccturbo_telemetry-e53da7362052c44f.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/reaction.rs crates/telemetry/src/report.rs crates/telemetry/src/score.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/reaction.rs:
crates/telemetry/src/report.rs:
crates/telemetry/src/score.rs:
