/root/repo/target/release/deps/accturbo_runner-138cab85c4e9fc9e.d: crates/runner/src/lib.rs

/root/repo/target/release/deps/accturbo_runner-138cab85c4e9fc9e: crates/runner/src/lib.rs

crates/runner/src/lib.rs:
