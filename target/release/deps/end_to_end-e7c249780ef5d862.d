/root/repo/target/release/deps/end_to_end-e7c249780ef5d862.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-e7c249780ef5d862: tests/end_to_end.rs

tests/end_to_end.rs:
