/root/repo/target/release/deps/accturbo_obs-80778cc4b5f5740b.d: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/metrics.rs crates/obs/src/span.rs crates/obs/src/tracer.rs

/root/repo/target/release/deps/accturbo_obs-80778cc4b5f5740b: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/metrics.rs crates/obs/src/span.rs crates/obs/src/tracer.rs

crates/obs/src/lib.rs:
crates/obs/src/event.rs:
crates/obs/src/metrics.rs:
crates/obs/src/span.rs:
crates/obs/src/tracer.rs:
