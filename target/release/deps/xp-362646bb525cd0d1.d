/root/repo/target/release/deps/xp-362646bb525cd0d1.d: crates/experiments/src/main.rs

/root/repo/target/release/deps/xp-362646bb525cd0d1: crates/experiments/src/main.rs

crates/experiments/src/main.rs:
