/root/repo/target/release/deps/runner_speedup-070e7bea71198456.d: crates/bench/benches/runner_speedup.rs

/root/repo/target/release/deps/runner_speedup-070e7bea71198456: crates/bench/benches/runner_speedup.rs

crates/bench/benches/runner_speedup.rs:
