/root/repo/target/release/deps/figures-fcc51c95cfee074f.d: crates/bench/benches/figures.rs

/root/repo/target/release/deps/figures-fcc51c95cfee074f: crates/bench/benches/figures.rs

crates/bench/benches/figures.rs:
