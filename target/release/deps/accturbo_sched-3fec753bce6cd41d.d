/root/repo/target/release/deps/accturbo_sched-3fec753bce6cd41d.d: crates/sched/src/lib.rs crates/sched/src/controller.rs crates/sched/src/rank.rs crates/sched/src/sppifo.rs

/root/repo/target/release/deps/libaccturbo_sched-3fec753bce6cd41d.rlib: crates/sched/src/lib.rs crates/sched/src/controller.rs crates/sched/src/rank.rs crates/sched/src/sppifo.rs

/root/repo/target/release/deps/libaccturbo_sched-3fec753bce6cd41d.rmeta: crates/sched/src/lib.rs crates/sched/src/controller.rs crates/sched/src/rank.rs crates/sched/src/sppifo.rs

crates/sched/src/lib.rs:
crates/sched/src/controller.rs:
crates/sched/src/rank.rs:
crates/sched/src/sppifo.rs:
