/root/repo/target/release/deps/accturbo_bench-95f8616ca15fcbf3.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libaccturbo_bench-95f8616ca15fcbf3.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libaccturbo_bench-95f8616ca15fcbf3.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
