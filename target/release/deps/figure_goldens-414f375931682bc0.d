/root/repo/target/release/deps/figure_goldens-414f375931682bc0.d: tests/figure_goldens.rs

/root/repo/target/release/deps/figure_goldens-414f375931682bc0: tests/figure_goldens.rs

tests/figure_goldens.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
