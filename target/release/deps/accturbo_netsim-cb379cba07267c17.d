/root/repo/target/release/deps/accturbo_netsim-cb379cba07267c17.d: crates/netsim/src/lib.rs crates/netsim/src/engine.rs crates/netsim/src/latency.rs crates/netsim/src/packet.rs crates/netsim/src/queue/mod.rs crates/netsim/src/queue/fifo.rs crates/netsim/src/queue/pifo.rs crates/netsim/src/queue/priority.rs crates/netsim/src/queue/red.rs crates/netsim/src/rate.rs crates/netsim/src/source.rs crates/netsim/src/stats.rs crates/netsim/src/switch.rs crates/netsim/src/time.rs crates/netsim/src/trace.rs crates/netsim/src/units.rs

/root/repo/target/release/deps/libaccturbo_netsim-cb379cba07267c17.rlib: crates/netsim/src/lib.rs crates/netsim/src/engine.rs crates/netsim/src/latency.rs crates/netsim/src/packet.rs crates/netsim/src/queue/mod.rs crates/netsim/src/queue/fifo.rs crates/netsim/src/queue/pifo.rs crates/netsim/src/queue/priority.rs crates/netsim/src/queue/red.rs crates/netsim/src/rate.rs crates/netsim/src/source.rs crates/netsim/src/stats.rs crates/netsim/src/switch.rs crates/netsim/src/time.rs crates/netsim/src/trace.rs crates/netsim/src/units.rs

/root/repo/target/release/deps/libaccturbo_netsim-cb379cba07267c17.rmeta: crates/netsim/src/lib.rs crates/netsim/src/engine.rs crates/netsim/src/latency.rs crates/netsim/src/packet.rs crates/netsim/src/queue/mod.rs crates/netsim/src/queue/fifo.rs crates/netsim/src/queue/pifo.rs crates/netsim/src/queue/priority.rs crates/netsim/src/queue/red.rs crates/netsim/src/rate.rs crates/netsim/src/source.rs crates/netsim/src/stats.rs crates/netsim/src/switch.rs crates/netsim/src/time.rs crates/netsim/src/trace.rs crates/netsim/src/units.rs

crates/netsim/src/lib.rs:
crates/netsim/src/engine.rs:
crates/netsim/src/latency.rs:
crates/netsim/src/packet.rs:
crates/netsim/src/queue/mod.rs:
crates/netsim/src/queue/fifo.rs:
crates/netsim/src/queue/pifo.rs:
crates/netsim/src/queue/priority.rs:
crates/netsim/src/queue/red.rs:
crates/netsim/src/rate.rs:
crates/netsim/src/source.rs:
crates/netsim/src/stats.rs:
crates/netsim/src/switch.rs:
crates/netsim/src/time.rs:
crates/netsim/src/trace.rs:
crates/netsim/src/units.rs:
