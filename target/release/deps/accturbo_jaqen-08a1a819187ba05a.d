/root/repo/target/release/deps/accturbo_jaqen-08a1a819187ba05a.d: crates/jaqen/src/lib.rs crates/jaqen/src/sketch.rs crates/jaqen/src/switch.rs

/root/repo/target/release/deps/accturbo_jaqen-08a1a819187ba05a: crates/jaqen/src/lib.rs crates/jaqen/src/sketch.rs crates/jaqen/src/switch.rs

crates/jaqen/src/lib.rs:
crates/jaqen/src/sketch.rs:
crates/jaqen/src/switch.rs:
