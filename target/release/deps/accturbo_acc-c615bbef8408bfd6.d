/root/repo/target/release/deps/accturbo_acc-c615bbef8408bfd6.d: crates/acc/src/lib.rs crates/acc/src/config.rs crates/acc/src/prefix.rs crates/acc/src/pushback.rs crates/acc/src/ratelimit.rs crates/acc/src/sessions.rs crates/acc/src/switch.rs

/root/repo/target/release/deps/libaccturbo_acc-c615bbef8408bfd6.rlib: crates/acc/src/lib.rs crates/acc/src/config.rs crates/acc/src/prefix.rs crates/acc/src/pushback.rs crates/acc/src/ratelimit.rs crates/acc/src/sessions.rs crates/acc/src/switch.rs

/root/repo/target/release/deps/libaccturbo_acc-c615bbef8408bfd6.rmeta: crates/acc/src/lib.rs crates/acc/src/config.rs crates/acc/src/prefix.rs crates/acc/src/pushback.rs crates/acc/src/ratelimit.rs crates/acc/src/sessions.rs crates/acc/src/switch.rs

crates/acc/src/lib.rs:
crates/acc/src/config.rs:
crates/acc/src/prefix.rs:
crates/acc/src/pushback.rs:
crates/acc/src/ratelimit.rs:
crates/acc/src/sessions.rs:
crates/acc/src/switch.rs:
