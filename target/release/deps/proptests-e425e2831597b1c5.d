/root/repo/target/release/deps/proptests-e425e2831597b1c5.d: crates/jaqen/tests/proptests.rs

/root/repo/target/release/deps/proptests-e425e2831597b1c5: crates/jaqen/tests/proptests.rs

crates/jaqen/tests/proptests.rs:
