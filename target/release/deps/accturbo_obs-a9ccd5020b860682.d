/root/repo/target/release/deps/accturbo_obs-a9ccd5020b860682.d: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/metrics.rs crates/obs/src/span.rs crates/obs/src/tracer.rs

/root/repo/target/release/deps/libaccturbo_obs-a9ccd5020b860682.rlib: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/metrics.rs crates/obs/src/span.rs crates/obs/src/tracer.rs

/root/repo/target/release/deps/libaccturbo_obs-a9ccd5020b860682.rmeta: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/metrics.rs crates/obs/src/span.rs crates/obs/src/tracer.rs

crates/obs/src/lib.rs:
crates/obs/src/event.rs:
crates/obs/src/metrics.rs:
crates/obs/src/span.rs:
crates/obs/src/tracer.rs:
