/root/repo/target/release/deps/xp-c90b42c4d2337b3d.d: crates/experiments/src/main.rs

/root/repo/target/release/deps/xp-c90b42c4d2337b3d: crates/experiments/src/main.rs

crates/experiments/src/main.rs:
