/root/repo/target/release/deps/accturbo-0f1c56bf880b4edc.d: src/lib.rs

/root/repo/target/release/deps/accturbo-0f1c56bf880b4edc: src/lib.rs

src/lib.rs:
