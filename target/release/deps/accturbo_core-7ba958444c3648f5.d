/root/repo/target/release/deps/accturbo_core-7ba958444c3648f5.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/ideal.rs crates/core/src/pipeline.rs crates/core/src/ranked.rs crates/core/src/resources.rs

/root/repo/target/release/deps/accturbo_core-7ba958444c3648f5: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/ideal.rs crates/core/src/pipeline.rs crates/core/src/ranked.rs crates/core/src/resources.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/ideal.rs:
crates/core/src/pipeline.rs:
crates/core/src/ranked.rs:
crates/core/src/resources.rs:
