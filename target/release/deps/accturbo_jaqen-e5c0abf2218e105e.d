/root/repo/target/release/deps/accturbo_jaqen-e5c0abf2218e105e.d: crates/jaqen/src/lib.rs crates/jaqen/src/sketch.rs crates/jaqen/src/switch.rs

/root/repo/target/release/deps/libaccturbo_jaqen-e5c0abf2218e105e.rlib: crates/jaqen/src/lib.rs crates/jaqen/src/sketch.rs crates/jaqen/src/switch.rs

/root/repo/target/release/deps/libaccturbo_jaqen-e5c0abf2218e105e.rmeta: crates/jaqen/src/lib.rs crates/jaqen/src/sketch.rs crates/jaqen/src/switch.rs

crates/jaqen/src/lib.rs:
crates/jaqen/src/sketch.rs:
crates/jaqen/src/switch.rs:
