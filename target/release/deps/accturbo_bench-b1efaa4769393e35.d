/root/repo/target/release/deps/accturbo_bench-b1efaa4769393e35.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libaccturbo_bench-b1efaa4769393e35.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libaccturbo_bench-b1efaa4769393e35.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
