/root/repo/target/release/deps/accturbo_bench-4b62bdd23584c3c2.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/accturbo_bench-4b62bdd23584c3c2: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
