/root/repo/target/release/deps/accturbo_jaqen-9fcc9490f959e291.d: crates/jaqen/src/lib.rs crates/jaqen/src/sketch.rs crates/jaqen/src/switch.rs

/root/repo/target/release/deps/libaccturbo_jaqen-9fcc9490f959e291.rlib: crates/jaqen/src/lib.rs crates/jaqen/src/sketch.rs crates/jaqen/src/switch.rs

/root/repo/target/release/deps/libaccturbo_jaqen-9fcc9490f959e291.rmeta: crates/jaqen/src/lib.rs crates/jaqen/src/sketch.rs crates/jaqen/src/switch.rs

crates/jaqen/src/lib.rs:
crates/jaqen/src/sketch.rs:
crates/jaqen/src/switch.rs:
