/root/repo/target/release/deps/accturbo-730c57c7a407be53.d: src/lib.rs

/root/repo/target/release/deps/libaccturbo-730c57c7a407be53.rlib: src/lib.rs

/root/repo/target/release/deps/libaccturbo-730c57c7a407be53.rmeta: src/lib.rs

src/lib.rs:
