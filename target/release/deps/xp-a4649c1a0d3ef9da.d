/root/repo/target/release/deps/xp-a4649c1a0d3ef9da.d: crates/experiments/src/main.rs

/root/repo/target/release/deps/xp-a4649c1a0d3ef9da: crates/experiments/src/main.rs

crates/experiments/src/main.rs:
