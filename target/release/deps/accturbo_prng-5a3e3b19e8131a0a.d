/root/repo/target/release/deps/accturbo_prng-5a3e3b19e8131a0a.d: crates/prng/src/lib.rs

/root/repo/target/release/deps/libaccturbo_prng-5a3e3b19e8131a0a.rlib: crates/prng/src/lib.rs

/root/repo/target/release/deps/libaccturbo_prng-5a3e3b19e8131a0a.rmeta: crates/prng/src/lib.rs

crates/prng/src/lib.rs:
