/root/repo/target/release/deps/accturbo-fa6f592ba9198d64.d: src/lib.rs

/root/repo/target/release/deps/libaccturbo-fa6f592ba9198d64.rlib: src/lib.rs

/root/repo/target/release/deps/libaccturbo-fa6f592ba9198d64.rmeta: src/lib.rs

src/lib.rs:
