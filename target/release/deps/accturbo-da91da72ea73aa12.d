/root/repo/target/release/deps/accturbo-da91da72ea73aa12.d: src/lib.rs

/root/repo/target/release/deps/accturbo-da91da72ea73aa12: src/lib.rs

src/lib.rs:
