/root/repo/target/release/deps/proptests-71e3e358cdb98281.d: crates/acc/tests/proptests.rs

/root/repo/target/release/deps/proptests-71e3e358cdb98281: crates/acc/tests/proptests.rs

crates/acc/tests/proptests.rs:
