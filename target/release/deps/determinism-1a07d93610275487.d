/root/repo/target/release/deps/determinism-1a07d93610275487.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-1a07d93610275487: tests/determinism.rs

tests/determinism.rs:
