/root/repo/target/release/deps/accturbo_experiments-2c0678f7517b1af8.d: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/adversarial.rs crates/experiments/src/cli.rs crates/experiments/src/common.rs crates/experiments/src/fig10.rs crates/experiments/src/fig11.rs crates/experiments/src/fig2.rs crates/experiments/src/fig3.rs crates/experiments/src/fig6.rs crates/experiments/src/fig7.rs crates/experiments/src/fig8.rs crates/experiments/src/fig9.rs crates/experiments/src/pushback.rs crates/experiments/src/result.rs crates/experiments/src/table3.rs

/root/repo/target/release/deps/libaccturbo_experiments-2c0678f7517b1af8.rlib: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/adversarial.rs crates/experiments/src/cli.rs crates/experiments/src/common.rs crates/experiments/src/fig10.rs crates/experiments/src/fig11.rs crates/experiments/src/fig2.rs crates/experiments/src/fig3.rs crates/experiments/src/fig6.rs crates/experiments/src/fig7.rs crates/experiments/src/fig8.rs crates/experiments/src/fig9.rs crates/experiments/src/pushback.rs crates/experiments/src/result.rs crates/experiments/src/table3.rs

/root/repo/target/release/deps/libaccturbo_experiments-2c0678f7517b1af8.rmeta: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/adversarial.rs crates/experiments/src/cli.rs crates/experiments/src/common.rs crates/experiments/src/fig10.rs crates/experiments/src/fig11.rs crates/experiments/src/fig2.rs crates/experiments/src/fig3.rs crates/experiments/src/fig6.rs crates/experiments/src/fig7.rs crates/experiments/src/fig8.rs crates/experiments/src/fig9.rs crates/experiments/src/pushback.rs crates/experiments/src/result.rs crates/experiments/src/table3.rs

crates/experiments/src/lib.rs:
crates/experiments/src/ablations.rs:
crates/experiments/src/adversarial.rs:
crates/experiments/src/cli.rs:
crates/experiments/src/common.rs:
crates/experiments/src/fig10.rs:
crates/experiments/src/fig11.rs:
crates/experiments/src/fig2.rs:
crates/experiments/src/fig3.rs:
crates/experiments/src/fig6.rs:
crates/experiments/src/fig7.rs:
crates/experiments/src/fig8.rs:
crates/experiments/src/fig9.rs:
crates/experiments/src/pushback.rs:
crates/experiments/src/result.rs:
crates/experiments/src/table3.rs:
