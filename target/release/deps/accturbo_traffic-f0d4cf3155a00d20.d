/root/repo/target/release/deps/accturbo_traffic-f0d4cf3155a00d20.d: crates/traffic/src/lib.rs crates/traffic/src/background.rs crates/traffic/src/cbr.rs crates/traffic/src/cicddos.rs crates/traffic/src/modifiers.rs crates/traffic/src/pulse.rs crates/traffic/src/scenarios.rs crates/traffic/src/vectors.rs

/root/repo/target/release/deps/accturbo_traffic-f0d4cf3155a00d20: crates/traffic/src/lib.rs crates/traffic/src/background.rs crates/traffic/src/cbr.rs crates/traffic/src/cicddos.rs crates/traffic/src/modifiers.rs crates/traffic/src/pulse.rs crates/traffic/src/scenarios.rs crates/traffic/src/vectors.rs

crates/traffic/src/lib.rs:
crates/traffic/src/background.rs:
crates/traffic/src/cbr.rs:
crates/traffic/src/cicddos.rs:
crates/traffic/src/modifiers.rs:
crates/traffic/src/pulse.rs:
crates/traffic/src/scenarios.rs:
crates/traffic/src/vectors.rs:
