/root/repo/target/release/deps/accturbo_runner-4db48fc2908c12da.d: crates/runner/src/lib.rs

/root/repo/target/release/deps/libaccturbo_runner-4db48fc2908c12da.rlib: crates/runner/src/lib.rs

/root/repo/target/release/deps/libaccturbo_runner-4db48fc2908c12da.rmeta: crates/runner/src/lib.rs

crates/runner/src/lib.rs:
