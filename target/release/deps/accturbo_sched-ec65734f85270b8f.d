/root/repo/target/release/deps/accturbo_sched-ec65734f85270b8f.d: crates/sched/src/lib.rs crates/sched/src/controller.rs crates/sched/src/rank.rs crates/sched/src/sppifo.rs

/root/repo/target/release/deps/libaccturbo_sched-ec65734f85270b8f.rlib: crates/sched/src/lib.rs crates/sched/src/controller.rs crates/sched/src/rank.rs crates/sched/src/sppifo.rs

/root/repo/target/release/deps/libaccturbo_sched-ec65734f85270b8f.rmeta: crates/sched/src/lib.rs crates/sched/src/controller.rs crates/sched/src/rank.rs crates/sched/src/sppifo.rs

crates/sched/src/lib.rs:
crates/sched/src/controller.rs:
crates/sched/src/rank.rs:
crates/sched/src/sppifo.rs:
