/root/repo/target/release/deps/proptests-f5015d57f42b8499.d: crates/netsim/tests/proptests.rs

/root/repo/target/release/deps/proptests-f5015d57f42b8499: crates/netsim/tests/proptests.rs

crates/netsim/tests/proptests.rs:
