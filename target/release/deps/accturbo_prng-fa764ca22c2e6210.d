/root/repo/target/release/deps/accturbo_prng-fa764ca22c2e6210.d: crates/prng/src/lib.rs

/root/repo/target/release/deps/accturbo_prng-fa764ca22c2e6210: crates/prng/src/lib.rs

crates/prng/src/lib.rs:
