/root/repo/target/release/deps/datapath-99daa2ce44967912.d: crates/bench/benches/datapath.rs

/root/repo/target/release/deps/datapath-99daa2ce44967912: crates/bench/benches/datapath.rs

crates/bench/benches/datapath.rs:
