/root/repo/target/release/deps/obs_overhead-8965344a41538f07.d: crates/bench/benches/obs_overhead.rs

/root/repo/target/release/deps/obs_overhead-8965344a41538f07: crates/bench/benches/obs_overhead.rs

crates/bench/benches/obs_overhead.rs:
