/root/repo/target/release/deps/accturbo_sched-a889178d9a7ed415.d: crates/sched/src/lib.rs crates/sched/src/controller.rs crates/sched/src/rank.rs crates/sched/src/sppifo.rs

/root/repo/target/release/deps/accturbo_sched-a889178d9a7ed415: crates/sched/src/lib.rs crates/sched/src/controller.rs crates/sched/src/rank.rs crates/sched/src/sppifo.rs

crates/sched/src/lib.rs:
crates/sched/src/controller.rs:
crates/sched/src/rank.rs:
crates/sched/src/sppifo.rs:
