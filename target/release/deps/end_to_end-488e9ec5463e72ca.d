/root/repo/target/release/deps/end_to_end-488e9ec5463e72ca.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-488e9ec5463e72ca: tests/end_to_end.rs

tests/end_to_end.rs:
