/root/repo/target/release/deps/accturbo_bench-83dc7902cfbfdc44.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libaccturbo_bench-83dc7902cfbfdc44.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libaccturbo_bench-83dc7902cfbfdc44.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
