/root/repo/target/release/deps/proptests-5a74877294b3097d.d: crates/clustering/tests/proptests.rs

/root/repo/target/release/deps/proptests-5a74877294b3097d: crates/clustering/tests/proptests.rs

crates/clustering/tests/proptests.rs:
