/root/repo/target/release/deps/accturbo_acc-44c3701d5d17c13b.d: crates/acc/src/lib.rs crates/acc/src/config.rs crates/acc/src/prefix.rs crates/acc/src/pushback.rs crates/acc/src/ratelimit.rs crates/acc/src/sessions.rs crates/acc/src/switch.rs

/root/repo/target/release/deps/accturbo_acc-44c3701d5d17c13b: crates/acc/src/lib.rs crates/acc/src/config.rs crates/acc/src/prefix.rs crates/acc/src/pushback.rs crates/acc/src/ratelimit.rs crates/acc/src/sessions.rs crates/acc/src/switch.rs

crates/acc/src/lib.rs:
crates/acc/src/config.rs:
crates/acc/src/prefix.rs:
crates/acc/src/pushback.rs:
crates/acc/src/ratelimit.rs:
crates/acc/src/sessions.rs:
crates/acc/src/switch.rs:
