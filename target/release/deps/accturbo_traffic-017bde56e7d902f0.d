/root/repo/target/release/deps/accturbo_traffic-017bde56e7d902f0.d: crates/traffic/src/lib.rs crates/traffic/src/background.rs crates/traffic/src/cbr.rs crates/traffic/src/cicddos.rs crates/traffic/src/modifiers.rs crates/traffic/src/pulse.rs crates/traffic/src/scenarios.rs crates/traffic/src/vectors.rs

/root/repo/target/release/deps/libaccturbo_traffic-017bde56e7d902f0.rlib: crates/traffic/src/lib.rs crates/traffic/src/background.rs crates/traffic/src/cbr.rs crates/traffic/src/cicddos.rs crates/traffic/src/modifiers.rs crates/traffic/src/pulse.rs crates/traffic/src/scenarios.rs crates/traffic/src/vectors.rs

/root/repo/target/release/deps/libaccturbo_traffic-017bde56e7d902f0.rmeta: crates/traffic/src/lib.rs crates/traffic/src/background.rs crates/traffic/src/cbr.rs crates/traffic/src/cicddos.rs crates/traffic/src/modifiers.rs crates/traffic/src/pulse.rs crates/traffic/src/scenarios.rs crates/traffic/src/vectors.rs

crates/traffic/src/lib.rs:
crates/traffic/src/background.rs:
crates/traffic/src/cbr.rs:
crates/traffic/src/cicddos.rs:
crates/traffic/src/modifiers.rs:
crates/traffic/src/pulse.rs:
crates/traffic/src/scenarios.rs:
crates/traffic/src/vectors.rs:
