/root/repo/target/release/deps/accturbo_traffic-1c6666eab0dd4e12.d: crates/traffic/src/lib.rs crates/traffic/src/background.rs crates/traffic/src/cbr.rs crates/traffic/src/cicddos.rs crates/traffic/src/modifiers.rs crates/traffic/src/pulse.rs crates/traffic/src/scenarios.rs crates/traffic/src/vectors.rs

/root/repo/target/release/deps/libaccturbo_traffic-1c6666eab0dd4e12.rlib: crates/traffic/src/lib.rs crates/traffic/src/background.rs crates/traffic/src/cbr.rs crates/traffic/src/cicddos.rs crates/traffic/src/modifiers.rs crates/traffic/src/pulse.rs crates/traffic/src/scenarios.rs crates/traffic/src/vectors.rs

/root/repo/target/release/deps/libaccturbo_traffic-1c6666eab0dd4e12.rmeta: crates/traffic/src/lib.rs crates/traffic/src/background.rs crates/traffic/src/cbr.rs crates/traffic/src/cicddos.rs crates/traffic/src/modifiers.rs crates/traffic/src/pulse.rs crates/traffic/src/scenarios.rs crates/traffic/src/vectors.rs

crates/traffic/src/lib.rs:
crates/traffic/src/background.rs:
crates/traffic/src/cbr.rs:
crates/traffic/src/cicddos.rs:
crates/traffic/src/modifiers.rs:
crates/traffic/src/pulse.rs:
crates/traffic/src/scenarios.rs:
crates/traffic/src/vectors.rs:
