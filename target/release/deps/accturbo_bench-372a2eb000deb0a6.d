/root/repo/target/release/deps/accturbo_bench-372a2eb000deb0a6.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/accturbo_bench-372a2eb000deb0a6: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
