/root/repo/target/release/deps/accturbo_core-3753a6b20e118566.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/ideal.rs crates/core/src/pipeline.rs crates/core/src/ranked.rs crates/core/src/resources.rs

/root/repo/target/release/deps/libaccturbo_core-3753a6b20e118566.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/ideal.rs crates/core/src/pipeline.rs crates/core/src/ranked.rs crates/core/src/resources.rs

/root/repo/target/release/deps/libaccturbo_core-3753a6b20e118566.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/ideal.rs crates/core/src/pipeline.rs crates/core/src/ranked.rs crates/core/src/resources.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/ideal.rs:
crates/core/src/pipeline.rs:
crates/core/src/ranked.rs:
crates/core/src/resources.rs:
