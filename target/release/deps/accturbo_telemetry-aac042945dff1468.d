/root/repo/target/release/deps/accturbo_telemetry-aac042945dff1468.d: crates/telemetry/src/lib.rs crates/telemetry/src/reaction.rs crates/telemetry/src/report.rs crates/telemetry/src/score.rs

/root/repo/target/release/deps/accturbo_telemetry-aac042945dff1468: crates/telemetry/src/lib.rs crates/telemetry/src/reaction.rs crates/telemetry/src/report.rs crates/telemetry/src/score.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/reaction.rs:
crates/telemetry/src/report.rs:
crates/telemetry/src/score.rs:
