/root/repo/target/release/examples/quickstart-45dea203405a347a.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-45dea203405a347a: examples/quickstart.rs

examples/quickstart.rs:
