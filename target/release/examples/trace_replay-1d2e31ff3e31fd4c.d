/root/repo/target/release/examples/trace_replay-1d2e31ff3e31fd4c.d: examples/trace_replay.rs

/root/repo/target/release/examples/trace_replay-1d2e31ff3e31fd4c: examples/trace_replay.rs

examples/trace_replay.rs:
