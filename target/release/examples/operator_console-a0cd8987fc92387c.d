/root/repo/target/release/examples/operator_console-a0cd8987fc92387c.d: examples/operator_console.rs

/root/repo/target/release/examples/operator_console-a0cd8987fc92387c: examples/operator_console.rs

examples/operator_console.rs:
