/root/repo/target/release/examples/clustering_explorer-03d5394d7c0fcbdd.d: examples/clustering_explorer.rs

/root/repo/target/release/examples/clustering_explorer-03d5394d7c0fcbdd: examples/clustering_explorer.rs

examples/clustering_explorer.rs:
