/root/repo/target/release/examples/operator_console-791d5600076f3fb3.d: examples/operator_console.rs

/root/repo/target/release/examples/operator_console-791d5600076f3fb3: examples/operator_console.rs

examples/operator_console.rs:
