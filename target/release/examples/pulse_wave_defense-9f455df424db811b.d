/root/repo/target/release/examples/pulse_wave_defense-9f455df424db811b.d: examples/pulse_wave_defense.rs

/root/repo/target/release/examples/pulse_wave_defense-9f455df424db811b: examples/pulse_wave_defense.rs

examples/pulse_wave_defense.rs:
