/root/repo/target/release/examples/trace_replay-756163f5d2443c5b.d: examples/trace_replay.rs

/root/repo/target/release/examples/trace_replay-756163f5d2443c5b: examples/trace_replay.rs

examples/trace_replay.rs:
