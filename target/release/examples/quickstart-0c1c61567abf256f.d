/root/repo/target/release/examples/quickstart-0c1c61567abf256f.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-0c1c61567abf256f: examples/quickstart.rs

examples/quickstart.rs:
