/root/repo/target/release/examples/clustering_explorer-8ada1b8b9811c658.d: examples/clustering_explorer.rs

/root/repo/target/release/examples/clustering_explorer-8ada1b8b9811c658: examples/clustering_explorer.rs

examples/clustering_explorer.rs:
