/root/repo/target/release/examples/pulse_wave_defense-f262e6b50c1f15b9.d: examples/pulse_wave_defense.rs

/root/repo/target/release/examples/pulse_wave_defense-f262e6b50c1f15b9: examples/pulse_wave_defense.rs

examples/pulse_wave_defense.rs:
