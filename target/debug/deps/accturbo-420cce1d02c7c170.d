/root/repo/target/debug/deps/accturbo-420cce1d02c7c170.d: src/lib.rs

/root/repo/target/debug/deps/libaccturbo-420cce1d02c7c170.rlib: src/lib.rs

/root/repo/target/debug/deps/libaccturbo-420cce1d02c7c170.rmeta: src/lib.rs

src/lib.rs:
