/root/repo/target/debug/deps/proptests-24e44156955d34ee.d: crates/jaqen/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-24e44156955d34ee.rmeta: crates/jaqen/tests/proptests.rs Cargo.toml

crates/jaqen/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
