/root/repo/target/debug/deps/proptests-14c42e0f9e1f9806.d: crates/acc/tests/proptests.rs

/root/repo/target/debug/deps/proptests-14c42e0f9e1f9806: crates/acc/tests/proptests.rs

crates/acc/tests/proptests.rs:
