/root/repo/target/debug/deps/accturbo_prng-45ee1413b7dfee04.d: crates/prng/src/lib.rs

/root/repo/target/debug/deps/accturbo_prng-45ee1413b7dfee04: crates/prng/src/lib.rs

crates/prng/src/lib.rs:
