/root/repo/target/debug/deps/accturbo_telemetry-5b9ccfcb024e5785.d: crates/telemetry/src/lib.rs crates/telemetry/src/reaction.rs crates/telemetry/src/report.rs crates/telemetry/src/score.rs

/root/repo/target/debug/deps/accturbo_telemetry-5b9ccfcb024e5785: crates/telemetry/src/lib.rs crates/telemetry/src/reaction.rs crates/telemetry/src/report.rs crates/telemetry/src/score.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/reaction.rs:
crates/telemetry/src/report.rs:
crates/telemetry/src/score.rs:
