/root/repo/target/debug/deps/accturbo_obs-adca75a919610bd9.d: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/metrics.rs crates/obs/src/span.rs crates/obs/src/tracer.rs

/root/repo/target/debug/deps/libaccturbo_obs-adca75a919610bd9.rlib: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/metrics.rs crates/obs/src/span.rs crates/obs/src/tracer.rs

/root/repo/target/debug/deps/libaccturbo_obs-adca75a919610bd9.rmeta: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/metrics.rs crates/obs/src/span.rs crates/obs/src/tracer.rs

crates/obs/src/lib.rs:
crates/obs/src/event.rs:
crates/obs/src/metrics.rs:
crates/obs/src/span.rs:
crates/obs/src/tracer.rs:
