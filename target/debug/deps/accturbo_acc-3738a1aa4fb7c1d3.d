/root/repo/target/debug/deps/accturbo_acc-3738a1aa4fb7c1d3.d: crates/acc/src/lib.rs crates/acc/src/config.rs crates/acc/src/prefix.rs crates/acc/src/pushback.rs crates/acc/src/ratelimit.rs crates/acc/src/sessions.rs crates/acc/src/switch.rs

/root/repo/target/debug/deps/accturbo_acc-3738a1aa4fb7c1d3: crates/acc/src/lib.rs crates/acc/src/config.rs crates/acc/src/prefix.rs crates/acc/src/pushback.rs crates/acc/src/ratelimit.rs crates/acc/src/sessions.rs crates/acc/src/switch.rs

crates/acc/src/lib.rs:
crates/acc/src/config.rs:
crates/acc/src/prefix.rs:
crates/acc/src/pushback.rs:
crates/acc/src/ratelimit.rs:
crates/acc/src/sessions.rs:
crates/acc/src/switch.rs:
