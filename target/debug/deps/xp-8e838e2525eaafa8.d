/root/repo/target/debug/deps/xp-8e838e2525eaafa8.d: crates/experiments/src/main.rs

/root/repo/target/debug/deps/xp-8e838e2525eaafa8: crates/experiments/src/main.rs

crates/experiments/src/main.rs:
