/root/repo/target/debug/deps/accturbo_acc-8bc8630a916267a7.d: crates/acc/src/lib.rs crates/acc/src/config.rs crates/acc/src/prefix.rs crates/acc/src/pushback.rs crates/acc/src/ratelimit.rs crates/acc/src/sessions.rs crates/acc/src/switch.rs

/root/repo/target/debug/deps/accturbo_acc-8bc8630a916267a7: crates/acc/src/lib.rs crates/acc/src/config.rs crates/acc/src/prefix.rs crates/acc/src/pushback.rs crates/acc/src/ratelimit.rs crates/acc/src/sessions.rs crates/acc/src/switch.rs

crates/acc/src/lib.rs:
crates/acc/src/config.rs:
crates/acc/src/prefix.rs:
crates/acc/src/pushback.rs:
crates/acc/src/ratelimit.rs:
crates/acc/src/sessions.rs:
crates/acc/src/switch.rs:
