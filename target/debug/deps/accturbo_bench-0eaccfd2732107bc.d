/root/repo/target/debug/deps/accturbo_bench-0eaccfd2732107bc.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/accturbo_bench-0eaccfd2732107bc: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
