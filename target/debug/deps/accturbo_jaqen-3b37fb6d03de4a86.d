/root/repo/target/debug/deps/accturbo_jaqen-3b37fb6d03de4a86.d: crates/jaqen/src/lib.rs crates/jaqen/src/sketch.rs crates/jaqen/src/switch.rs

/root/repo/target/debug/deps/libaccturbo_jaqen-3b37fb6d03de4a86.rlib: crates/jaqen/src/lib.rs crates/jaqen/src/sketch.rs crates/jaqen/src/switch.rs

/root/repo/target/debug/deps/libaccturbo_jaqen-3b37fb6d03de4a86.rmeta: crates/jaqen/src/lib.rs crates/jaqen/src/sketch.rs crates/jaqen/src/switch.rs

crates/jaqen/src/lib.rs:
crates/jaqen/src/sketch.rs:
crates/jaqen/src/switch.rs:
