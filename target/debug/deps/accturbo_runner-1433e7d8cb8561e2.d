/root/repo/target/debug/deps/accturbo_runner-1433e7d8cb8561e2.d: crates/runner/src/lib.rs

/root/repo/target/debug/deps/libaccturbo_runner-1433e7d8cb8561e2.rlib: crates/runner/src/lib.rs

/root/repo/target/debug/deps/libaccturbo_runner-1433e7d8cb8561e2.rmeta: crates/runner/src/lib.rs

crates/runner/src/lib.rs:
