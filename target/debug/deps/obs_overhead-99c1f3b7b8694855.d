/root/repo/target/debug/deps/obs_overhead-99c1f3b7b8694855.d: crates/bench/benches/obs_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libobs_overhead-99c1f3b7b8694855.rmeta: crates/bench/benches/obs_overhead.rs Cargo.toml

crates/bench/benches/obs_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
