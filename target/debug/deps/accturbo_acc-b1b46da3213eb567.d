/root/repo/target/debug/deps/accturbo_acc-b1b46da3213eb567.d: crates/acc/src/lib.rs crates/acc/src/config.rs crates/acc/src/prefix.rs crates/acc/src/pushback.rs crates/acc/src/ratelimit.rs crates/acc/src/sessions.rs crates/acc/src/switch.rs Cargo.toml

/root/repo/target/debug/deps/libaccturbo_acc-b1b46da3213eb567.rmeta: crates/acc/src/lib.rs crates/acc/src/config.rs crates/acc/src/prefix.rs crates/acc/src/pushback.rs crates/acc/src/ratelimit.rs crates/acc/src/sessions.rs crates/acc/src/switch.rs Cargo.toml

crates/acc/src/lib.rs:
crates/acc/src/config.rs:
crates/acc/src/prefix.rs:
crates/acc/src/pushback.rs:
crates/acc/src/ratelimit.rs:
crates/acc/src/sessions.rs:
crates/acc/src/switch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
