/root/repo/target/debug/deps/accturbo_traffic-33ca572b9a0eb7a4.d: crates/traffic/src/lib.rs crates/traffic/src/background.rs crates/traffic/src/cbr.rs crates/traffic/src/cicddos.rs crates/traffic/src/modifiers.rs crates/traffic/src/pulse.rs crates/traffic/src/scenarios.rs crates/traffic/src/vectors.rs

/root/repo/target/debug/deps/libaccturbo_traffic-33ca572b9a0eb7a4.rlib: crates/traffic/src/lib.rs crates/traffic/src/background.rs crates/traffic/src/cbr.rs crates/traffic/src/cicddos.rs crates/traffic/src/modifiers.rs crates/traffic/src/pulse.rs crates/traffic/src/scenarios.rs crates/traffic/src/vectors.rs

/root/repo/target/debug/deps/libaccturbo_traffic-33ca572b9a0eb7a4.rmeta: crates/traffic/src/lib.rs crates/traffic/src/background.rs crates/traffic/src/cbr.rs crates/traffic/src/cicddos.rs crates/traffic/src/modifiers.rs crates/traffic/src/pulse.rs crates/traffic/src/scenarios.rs crates/traffic/src/vectors.rs

crates/traffic/src/lib.rs:
crates/traffic/src/background.rs:
crates/traffic/src/cbr.rs:
crates/traffic/src/cicddos.rs:
crates/traffic/src/modifiers.rs:
crates/traffic/src/pulse.rs:
crates/traffic/src/scenarios.rs:
crates/traffic/src/vectors.rs:
