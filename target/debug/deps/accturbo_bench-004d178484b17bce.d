/root/repo/target/debug/deps/accturbo_bench-004d178484b17bce.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/accturbo_bench-004d178484b17bce: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
