/root/repo/target/debug/deps/xp-598eca1e39702957.d: crates/experiments/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libxp-598eca1e39702957.rmeta: crates/experiments/src/main.rs Cargo.toml

crates/experiments/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
