/root/repo/target/debug/deps/accturbo_obs-336708aca0124863.d: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/metrics.rs crates/obs/src/span.rs crates/obs/src/tracer.rs

/root/repo/target/debug/deps/accturbo_obs-336708aca0124863: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/metrics.rs crates/obs/src/span.rs crates/obs/src/tracer.rs

crates/obs/src/lib.rs:
crates/obs/src/event.rs:
crates/obs/src/metrics.rs:
crates/obs/src/span.rs:
crates/obs/src/tracer.rs:
