/root/repo/target/debug/deps/accturbo_jaqen-5ab8c1b8ab6df284.d: crates/jaqen/src/lib.rs crates/jaqen/src/sketch.rs crates/jaqen/src/switch.rs

/root/repo/target/debug/deps/accturbo_jaqen-5ab8c1b8ab6df284: crates/jaqen/src/lib.rs crates/jaqen/src/sketch.rs crates/jaqen/src/switch.rs

crates/jaqen/src/lib.rs:
crates/jaqen/src/sketch.rs:
crates/jaqen/src/switch.rs:
