/root/repo/target/debug/deps/datapath-ff79df62e50d1908.d: crates/bench/benches/datapath.rs Cargo.toml

/root/repo/target/debug/deps/libdatapath-ff79df62e50d1908.rmeta: crates/bench/benches/datapath.rs Cargo.toml

crates/bench/benches/datapath.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
