/root/repo/target/debug/deps/accturbo_clustering-245355b5ac6d25cb.d: crates/clustering/src/lib.rs crates/clustering/src/bloom.rs crates/clustering/src/cluster.rs crates/clustering/src/eval.rs crates/clustering/src/feature.rs crates/clustering/src/hybrid.rs crates/clustering/src/kmeans.rs crates/clustering/src/online.rs

/root/repo/target/debug/deps/libaccturbo_clustering-245355b5ac6d25cb.rlib: crates/clustering/src/lib.rs crates/clustering/src/bloom.rs crates/clustering/src/cluster.rs crates/clustering/src/eval.rs crates/clustering/src/feature.rs crates/clustering/src/hybrid.rs crates/clustering/src/kmeans.rs crates/clustering/src/online.rs

/root/repo/target/debug/deps/libaccturbo_clustering-245355b5ac6d25cb.rmeta: crates/clustering/src/lib.rs crates/clustering/src/bloom.rs crates/clustering/src/cluster.rs crates/clustering/src/eval.rs crates/clustering/src/feature.rs crates/clustering/src/hybrid.rs crates/clustering/src/kmeans.rs crates/clustering/src/online.rs

crates/clustering/src/lib.rs:
crates/clustering/src/bloom.rs:
crates/clustering/src/cluster.rs:
crates/clustering/src/eval.rs:
crates/clustering/src/feature.rs:
crates/clustering/src/hybrid.rs:
crates/clustering/src/kmeans.rs:
crates/clustering/src/online.rs:
