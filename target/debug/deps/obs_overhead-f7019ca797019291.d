/root/repo/target/debug/deps/obs_overhead-f7019ca797019291.d: crates/bench/benches/obs_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libobs_overhead-f7019ca797019291.rmeta: crates/bench/benches/obs_overhead.rs Cargo.toml

crates/bench/benches/obs_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
