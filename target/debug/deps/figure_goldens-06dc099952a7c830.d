/root/repo/target/debug/deps/figure_goldens-06dc099952a7c830.d: tests/figure_goldens.rs

/root/repo/target/debug/deps/figure_goldens-06dc099952a7c830: tests/figure_goldens.rs

tests/figure_goldens.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
