/root/repo/target/debug/deps/proptests-669d43a970bcbc1a.d: crates/netsim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-669d43a970bcbc1a: crates/netsim/tests/proptests.rs

crates/netsim/tests/proptests.rs:
