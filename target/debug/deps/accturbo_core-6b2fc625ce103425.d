/root/repo/target/debug/deps/accturbo_core-6b2fc625ce103425.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/ideal.rs crates/core/src/pipeline.rs crates/core/src/ranked.rs crates/core/src/resources.rs

/root/repo/target/debug/deps/libaccturbo_core-6b2fc625ce103425.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/ideal.rs crates/core/src/pipeline.rs crates/core/src/ranked.rs crates/core/src/resources.rs

/root/repo/target/debug/deps/libaccturbo_core-6b2fc625ce103425.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/ideal.rs crates/core/src/pipeline.rs crates/core/src/ranked.rs crates/core/src/resources.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/ideal.rs:
crates/core/src/pipeline.rs:
crates/core/src/ranked.rs:
crates/core/src/resources.rs:
