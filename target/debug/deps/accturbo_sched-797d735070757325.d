/root/repo/target/debug/deps/accturbo_sched-797d735070757325.d: crates/sched/src/lib.rs crates/sched/src/controller.rs crates/sched/src/rank.rs crates/sched/src/sppifo.rs

/root/repo/target/debug/deps/accturbo_sched-797d735070757325: crates/sched/src/lib.rs crates/sched/src/controller.rs crates/sched/src/rank.rs crates/sched/src/sppifo.rs

crates/sched/src/lib.rs:
crates/sched/src/controller.rs:
crates/sched/src/rank.rs:
crates/sched/src/sppifo.rs:
