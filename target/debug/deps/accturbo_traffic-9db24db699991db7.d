/root/repo/target/debug/deps/accturbo_traffic-9db24db699991db7.d: crates/traffic/src/lib.rs crates/traffic/src/background.rs crates/traffic/src/cbr.rs crates/traffic/src/cicddos.rs crates/traffic/src/modifiers.rs crates/traffic/src/pulse.rs crates/traffic/src/scenarios.rs crates/traffic/src/vectors.rs

/root/repo/target/debug/deps/accturbo_traffic-9db24db699991db7: crates/traffic/src/lib.rs crates/traffic/src/background.rs crates/traffic/src/cbr.rs crates/traffic/src/cicddos.rs crates/traffic/src/modifiers.rs crates/traffic/src/pulse.rs crates/traffic/src/scenarios.rs crates/traffic/src/vectors.rs

crates/traffic/src/lib.rs:
crates/traffic/src/background.rs:
crates/traffic/src/cbr.rs:
crates/traffic/src/cicddos.rs:
crates/traffic/src/modifiers.rs:
crates/traffic/src/pulse.rs:
crates/traffic/src/scenarios.rs:
crates/traffic/src/vectors.rs:
