/root/repo/target/debug/deps/accturbo_obs-31acc14d7d48a0fa.d: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/metrics.rs crates/obs/src/span.rs crates/obs/src/tracer.rs Cargo.toml

/root/repo/target/debug/deps/libaccturbo_obs-31acc14d7d48a0fa.rmeta: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/metrics.rs crates/obs/src/span.rs crates/obs/src/tracer.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/event.rs:
crates/obs/src/metrics.rs:
crates/obs/src/span.rs:
crates/obs/src/tracer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
