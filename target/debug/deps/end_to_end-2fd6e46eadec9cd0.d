/root/repo/target/debug/deps/end_to_end-2fd6e46eadec9cd0.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-2fd6e46eadec9cd0: tests/end_to_end.rs

tests/end_to_end.rs:
