/root/repo/target/debug/deps/accturbo_sched-827d5b2aaa6d5c9a.d: crates/sched/src/lib.rs crates/sched/src/controller.rs crates/sched/src/rank.rs crates/sched/src/sppifo.rs

/root/repo/target/debug/deps/libaccturbo_sched-827d5b2aaa6d5c9a.rlib: crates/sched/src/lib.rs crates/sched/src/controller.rs crates/sched/src/rank.rs crates/sched/src/sppifo.rs

/root/repo/target/debug/deps/libaccturbo_sched-827d5b2aaa6d5c9a.rmeta: crates/sched/src/lib.rs crates/sched/src/controller.rs crates/sched/src/rank.rs crates/sched/src/sppifo.rs

crates/sched/src/lib.rs:
crates/sched/src/controller.rs:
crates/sched/src/rank.rs:
crates/sched/src/sppifo.rs:
