/root/repo/target/debug/deps/figures-a507b6b0a8cb604d.d: crates/bench/benches/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-a507b6b0a8cb604d.rmeta: crates/bench/benches/figures.rs Cargo.toml

crates/bench/benches/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
