/root/repo/target/debug/deps/xp-ede443c916bb216e.d: crates/experiments/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libxp-ede443c916bb216e.rmeta: crates/experiments/src/main.rs Cargo.toml

crates/experiments/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
