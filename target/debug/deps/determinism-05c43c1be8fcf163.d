/root/repo/target/debug/deps/determinism-05c43c1be8fcf163.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-05c43c1be8fcf163: tests/determinism.rs

tests/determinism.rs:
