/root/repo/target/debug/deps/accturbo_clustering-d6fbf04da4e09e4b.d: crates/clustering/src/lib.rs crates/clustering/src/bloom.rs crates/clustering/src/cluster.rs crates/clustering/src/eval.rs crates/clustering/src/feature.rs crates/clustering/src/hybrid.rs crates/clustering/src/kmeans.rs crates/clustering/src/online.rs Cargo.toml

/root/repo/target/debug/deps/libaccturbo_clustering-d6fbf04da4e09e4b.rmeta: crates/clustering/src/lib.rs crates/clustering/src/bloom.rs crates/clustering/src/cluster.rs crates/clustering/src/eval.rs crates/clustering/src/feature.rs crates/clustering/src/hybrid.rs crates/clustering/src/kmeans.rs crates/clustering/src/online.rs Cargo.toml

crates/clustering/src/lib.rs:
crates/clustering/src/bloom.rs:
crates/clustering/src/cluster.rs:
crates/clustering/src/eval.rs:
crates/clustering/src/feature.rs:
crates/clustering/src/hybrid.rs:
crates/clustering/src/kmeans.rs:
crates/clustering/src/online.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
