/root/repo/target/debug/deps/determinism-e4398f4f13fe470b.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-e4398f4f13fe470b.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
