/root/repo/target/debug/deps/accturbo_prng-7298b8deeedd89c2.d: crates/prng/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libaccturbo_prng-7298b8deeedd89c2.rmeta: crates/prng/src/lib.rs Cargo.toml

crates/prng/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
