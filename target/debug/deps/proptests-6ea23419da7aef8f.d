/root/repo/target/debug/deps/proptests-6ea23419da7aef8f.d: crates/netsim/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-6ea23419da7aef8f.rmeta: crates/netsim/tests/proptests.rs Cargo.toml

crates/netsim/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
