/root/repo/target/debug/deps/accturbo_bench-2681a15f39a0cb5b.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libaccturbo_bench-2681a15f39a0cb5b.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
