/root/repo/target/debug/deps/accturbo_runner-577afbf18096acde.d: crates/runner/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libaccturbo_runner-577afbf18096acde.rmeta: crates/runner/src/lib.rs Cargo.toml

crates/runner/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
