/root/repo/target/debug/deps/accturbo_bench-36cb5bdb7dbc31ca.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libaccturbo_bench-36cb5bdb7dbc31ca.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
