/root/repo/target/debug/deps/accturbo-798ece21d714fb64.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libaccturbo-798ece21d714fb64.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
