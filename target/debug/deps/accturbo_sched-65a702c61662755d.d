/root/repo/target/debug/deps/accturbo_sched-65a702c61662755d.d: crates/sched/src/lib.rs crates/sched/src/controller.rs crates/sched/src/rank.rs crates/sched/src/sppifo.rs Cargo.toml

/root/repo/target/debug/deps/libaccturbo_sched-65a702c61662755d.rmeta: crates/sched/src/lib.rs crates/sched/src/controller.rs crates/sched/src/rank.rs crates/sched/src/sppifo.rs Cargo.toml

crates/sched/src/lib.rs:
crates/sched/src/controller.rs:
crates/sched/src/rank.rs:
crates/sched/src/sppifo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
