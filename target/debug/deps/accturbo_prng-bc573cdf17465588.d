/root/repo/target/debug/deps/accturbo_prng-bc573cdf17465588.d: crates/prng/src/lib.rs

/root/repo/target/debug/deps/libaccturbo_prng-bc573cdf17465588.rlib: crates/prng/src/lib.rs

/root/repo/target/debug/deps/libaccturbo_prng-bc573cdf17465588.rmeta: crates/prng/src/lib.rs

crates/prng/src/lib.rs:
