/root/repo/target/debug/deps/figures-8c703bc3f1708300.d: crates/bench/benches/figures.rs

/root/repo/target/debug/deps/figures-8c703bc3f1708300: crates/bench/benches/figures.rs

crates/bench/benches/figures.rs:
