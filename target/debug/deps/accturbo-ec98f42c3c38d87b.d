/root/repo/target/debug/deps/accturbo-ec98f42c3c38d87b.d: src/lib.rs

/root/repo/target/debug/deps/accturbo-ec98f42c3c38d87b: src/lib.rs

src/lib.rs:
