/root/repo/target/debug/deps/accturbo_telemetry-3bec1f183a4384bb.d: crates/telemetry/src/lib.rs crates/telemetry/src/reaction.rs crates/telemetry/src/report.rs crates/telemetry/src/score.rs

/root/repo/target/debug/deps/libaccturbo_telemetry-3bec1f183a4384bb.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/reaction.rs crates/telemetry/src/report.rs crates/telemetry/src/score.rs

/root/repo/target/debug/deps/libaccturbo_telemetry-3bec1f183a4384bb.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/reaction.rs crates/telemetry/src/report.rs crates/telemetry/src/score.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/reaction.rs:
crates/telemetry/src/report.rs:
crates/telemetry/src/score.rs:
