/root/repo/target/debug/deps/accturbo-23f9c3dad7b6d092.d: src/lib.rs

/root/repo/target/debug/deps/accturbo-23f9c3dad7b6d092: src/lib.rs

src/lib.rs:
