/root/repo/target/debug/deps/figure_goldens-fb6886b136872367.d: tests/figure_goldens.rs Cargo.toml

/root/repo/target/debug/deps/libfigure_goldens-fb6886b136872367.rmeta: tests/figure_goldens.rs Cargo.toml

tests/figure_goldens.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
