/root/repo/target/debug/deps/accturbo_telemetry-a277c93472d8120b.d: crates/telemetry/src/lib.rs crates/telemetry/src/reaction.rs crates/telemetry/src/report.rs crates/telemetry/src/score.rs Cargo.toml

/root/repo/target/debug/deps/libaccturbo_telemetry-a277c93472d8120b.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/reaction.rs crates/telemetry/src/report.rs crates/telemetry/src/score.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/reaction.rs:
crates/telemetry/src/report.rs:
crates/telemetry/src/score.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
