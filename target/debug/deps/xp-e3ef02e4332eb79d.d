/root/repo/target/debug/deps/xp-e3ef02e4332eb79d.d: crates/experiments/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libxp-e3ef02e4332eb79d.rmeta: crates/experiments/src/main.rs Cargo.toml

crates/experiments/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
