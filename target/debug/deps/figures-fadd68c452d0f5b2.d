/root/repo/target/debug/deps/figures-fadd68c452d0f5b2.d: crates/bench/benches/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-fadd68c452d0f5b2.rmeta: crates/bench/benches/figures.rs Cargo.toml

crates/bench/benches/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
