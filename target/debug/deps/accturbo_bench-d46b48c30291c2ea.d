/root/repo/target/debug/deps/accturbo_bench-d46b48c30291c2ea.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libaccturbo_bench-d46b48c30291c2ea.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libaccturbo_bench-d46b48c30291c2ea.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
