/root/repo/target/debug/deps/proptests-658bdc74ee0ff106.d: crates/clustering/tests/proptests.rs

/root/repo/target/debug/deps/proptests-658bdc74ee0ff106: crates/clustering/tests/proptests.rs

crates/clustering/tests/proptests.rs:
