/root/repo/target/debug/deps/xp-f86eab4ffe17b9d5.d: crates/experiments/src/main.rs

/root/repo/target/debug/deps/xp-f86eab4ffe17b9d5: crates/experiments/src/main.rs

crates/experiments/src/main.rs:
