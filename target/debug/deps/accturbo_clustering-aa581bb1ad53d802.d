/root/repo/target/debug/deps/accturbo_clustering-aa581bb1ad53d802.d: crates/clustering/src/lib.rs crates/clustering/src/bloom.rs crates/clustering/src/cluster.rs crates/clustering/src/eval.rs crates/clustering/src/feature.rs crates/clustering/src/hybrid.rs crates/clustering/src/kmeans.rs crates/clustering/src/online.rs

/root/repo/target/debug/deps/accturbo_clustering-aa581bb1ad53d802: crates/clustering/src/lib.rs crates/clustering/src/bloom.rs crates/clustering/src/cluster.rs crates/clustering/src/eval.rs crates/clustering/src/feature.rs crates/clustering/src/hybrid.rs crates/clustering/src/kmeans.rs crates/clustering/src/online.rs

crates/clustering/src/lib.rs:
crates/clustering/src/bloom.rs:
crates/clustering/src/cluster.rs:
crates/clustering/src/eval.rs:
crates/clustering/src/feature.rs:
crates/clustering/src/hybrid.rs:
crates/clustering/src/kmeans.rs:
crates/clustering/src/online.rs:
