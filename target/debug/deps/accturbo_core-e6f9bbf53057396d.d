/root/repo/target/debug/deps/accturbo_core-e6f9bbf53057396d.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/ideal.rs crates/core/src/pipeline.rs crates/core/src/ranked.rs crates/core/src/resources.rs Cargo.toml

/root/repo/target/debug/deps/libaccturbo_core-e6f9bbf53057396d.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/ideal.rs crates/core/src/pipeline.rs crates/core/src/ranked.rs crates/core/src/resources.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/ideal.rs:
crates/core/src/pipeline.rs:
crates/core/src/ranked.rs:
crates/core/src/resources.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
