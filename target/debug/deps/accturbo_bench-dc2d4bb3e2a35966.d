/root/repo/target/debug/deps/accturbo_bench-dc2d4bb3e2a35966.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libaccturbo_bench-dc2d4bb3e2a35966.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
