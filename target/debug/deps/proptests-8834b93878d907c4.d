/root/repo/target/debug/deps/proptests-8834b93878d907c4.d: crates/netsim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-8834b93878d907c4: crates/netsim/tests/proptests.rs

crates/netsim/tests/proptests.rs:
