/root/repo/target/debug/deps/accturbo_traffic-f410b9d0ac7c52fa.d: crates/traffic/src/lib.rs crates/traffic/src/background.rs crates/traffic/src/cbr.rs crates/traffic/src/cicddos.rs crates/traffic/src/modifiers.rs crates/traffic/src/pulse.rs crates/traffic/src/scenarios.rs crates/traffic/src/vectors.rs

/root/repo/target/debug/deps/libaccturbo_traffic-f410b9d0ac7c52fa.rlib: crates/traffic/src/lib.rs crates/traffic/src/background.rs crates/traffic/src/cbr.rs crates/traffic/src/cicddos.rs crates/traffic/src/modifiers.rs crates/traffic/src/pulse.rs crates/traffic/src/scenarios.rs crates/traffic/src/vectors.rs

/root/repo/target/debug/deps/libaccturbo_traffic-f410b9d0ac7c52fa.rmeta: crates/traffic/src/lib.rs crates/traffic/src/background.rs crates/traffic/src/cbr.rs crates/traffic/src/cicddos.rs crates/traffic/src/modifiers.rs crates/traffic/src/pulse.rs crates/traffic/src/scenarios.rs crates/traffic/src/vectors.rs

crates/traffic/src/lib.rs:
crates/traffic/src/background.rs:
crates/traffic/src/cbr.rs:
crates/traffic/src/cicddos.rs:
crates/traffic/src/modifiers.rs:
crates/traffic/src/pulse.rs:
crates/traffic/src/scenarios.rs:
crates/traffic/src/vectors.rs:
