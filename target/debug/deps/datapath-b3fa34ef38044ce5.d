/root/repo/target/debug/deps/datapath-b3fa34ef38044ce5.d: crates/bench/benches/datapath.rs Cargo.toml

/root/repo/target/debug/deps/libdatapath-b3fa34ef38044ce5.rmeta: crates/bench/benches/datapath.rs Cargo.toml

crates/bench/benches/datapath.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
