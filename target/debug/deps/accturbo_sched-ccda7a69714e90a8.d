/root/repo/target/debug/deps/accturbo_sched-ccda7a69714e90a8.d: crates/sched/src/lib.rs crates/sched/src/controller.rs crates/sched/src/rank.rs crates/sched/src/sppifo.rs

/root/repo/target/debug/deps/libaccturbo_sched-ccda7a69714e90a8.rlib: crates/sched/src/lib.rs crates/sched/src/controller.rs crates/sched/src/rank.rs crates/sched/src/sppifo.rs

/root/repo/target/debug/deps/libaccturbo_sched-ccda7a69714e90a8.rmeta: crates/sched/src/lib.rs crates/sched/src/controller.rs crates/sched/src/rank.rs crates/sched/src/sppifo.rs

crates/sched/src/lib.rs:
crates/sched/src/controller.rs:
crates/sched/src/rank.rs:
crates/sched/src/sppifo.rs:
