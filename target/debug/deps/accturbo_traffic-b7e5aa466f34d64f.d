/root/repo/target/debug/deps/accturbo_traffic-b7e5aa466f34d64f.d: crates/traffic/src/lib.rs crates/traffic/src/background.rs crates/traffic/src/cbr.rs crates/traffic/src/cicddos.rs crates/traffic/src/modifiers.rs crates/traffic/src/pulse.rs crates/traffic/src/scenarios.rs crates/traffic/src/vectors.rs Cargo.toml

/root/repo/target/debug/deps/libaccturbo_traffic-b7e5aa466f34d64f.rmeta: crates/traffic/src/lib.rs crates/traffic/src/background.rs crates/traffic/src/cbr.rs crates/traffic/src/cicddos.rs crates/traffic/src/modifiers.rs crates/traffic/src/pulse.rs crates/traffic/src/scenarios.rs crates/traffic/src/vectors.rs Cargo.toml

crates/traffic/src/lib.rs:
crates/traffic/src/background.rs:
crates/traffic/src/cbr.rs:
crates/traffic/src/cicddos.rs:
crates/traffic/src/modifiers.rs:
crates/traffic/src/pulse.rs:
crates/traffic/src/scenarios.rs:
crates/traffic/src/vectors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
