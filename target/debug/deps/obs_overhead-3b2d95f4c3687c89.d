/root/repo/target/debug/deps/obs_overhead-3b2d95f4c3687c89.d: crates/bench/benches/obs_overhead.rs

/root/repo/target/debug/deps/obs_overhead-3b2d95f4c3687c89: crates/bench/benches/obs_overhead.rs

crates/bench/benches/obs_overhead.rs:
