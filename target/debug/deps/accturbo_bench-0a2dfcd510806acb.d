/root/repo/target/debug/deps/accturbo_bench-0a2dfcd510806acb.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libaccturbo_bench-0a2dfcd510806acb.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
