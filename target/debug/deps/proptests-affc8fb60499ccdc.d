/root/repo/target/debug/deps/proptests-affc8fb60499ccdc.d: crates/jaqen/tests/proptests.rs

/root/repo/target/debug/deps/proptests-affc8fb60499ccdc: crates/jaqen/tests/proptests.rs

crates/jaqen/tests/proptests.rs:
