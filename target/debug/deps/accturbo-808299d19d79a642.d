/root/repo/target/debug/deps/accturbo-808299d19d79a642.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libaccturbo-808299d19d79a642.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
