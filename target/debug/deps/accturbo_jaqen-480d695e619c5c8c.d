/root/repo/target/debug/deps/accturbo_jaqen-480d695e619c5c8c.d: crates/jaqen/src/lib.rs crates/jaqen/src/sketch.rs crates/jaqen/src/switch.rs Cargo.toml

/root/repo/target/debug/deps/libaccturbo_jaqen-480d695e619c5c8c.rmeta: crates/jaqen/src/lib.rs crates/jaqen/src/sketch.rs crates/jaqen/src/switch.rs Cargo.toml

crates/jaqen/src/lib.rs:
crates/jaqen/src/sketch.rs:
crates/jaqen/src/switch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
