/root/repo/target/debug/deps/accturbo_core-568b48c461604de3.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/ideal.rs crates/core/src/pipeline.rs crates/core/src/ranked.rs crates/core/src/resources.rs

/root/repo/target/debug/deps/accturbo_core-568b48c461604de3: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/ideal.rs crates/core/src/pipeline.rs crates/core/src/ranked.rs crates/core/src/resources.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/ideal.rs:
crates/core/src/pipeline.rs:
crates/core/src/ranked.rs:
crates/core/src/resources.rs:
