/root/repo/target/debug/deps/accturbo_sched-9af67b4c043f31ca.d: crates/sched/src/lib.rs crates/sched/src/controller.rs crates/sched/src/rank.rs crates/sched/src/sppifo.rs

/root/repo/target/debug/deps/accturbo_sched-9af67b4c043f31ca: crates/sched/src/lib.rs crates/sched/src/controller.rs crates/sched/src/rank.rs crates/sched/src/sppifo.rs

crates/sched/src/lib.rs:
crates/sched/src/controller.rs:
crates/sched/src/rank.rs:
crates/sched/src/sppifo.rs:
