/root/repo/target/debug/deps/proptests-26d9f3bb77eeb01e.d: crates/clustering/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-26d9f3bb77eeb01e.rmeta: crates/clustering/tests/proptests.rs Cargo.toml

crates/clustering/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
