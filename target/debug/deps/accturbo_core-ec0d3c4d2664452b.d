/root/repo/target/debug/deps/accturbo_core-ec0d3c4d2664452b.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/ideal.rs crates/core/src/pipeline.rs crates/core/src/ranked.rs crates/core/src/resources.rs

/root/repo/target/debug/deps/libaccturbo_core-ec0d3c4d2664452b.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/ideal.rs crates/core/src/pipeline.rs crates/core/src/ranked.rs crates/core/src/resources.rs

/root/repo/target/debug/deps/libaccturbo_core-ec0d3c4d2664452b.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/ideal.rs crates/core/src/pipeline.rs crates/core/src/ranked.rs crates/core/src/resources.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/ideal.rs:
crates/core/src/pipeline.rs:
crates/core/src/ranked.rs:
crates/core/src/resources.rs:
