/root/repo/target/debug/deps/accturbo_clustering-3efb3858ac9714c8.d: crates/clustering/src/lib.rs crates/clustering/src/bloom.rs crates/clustering/src/cluster.rs crates/clustering/src/eval.rs crates/clustering/src/feature.rs crates/clustering/src/hybrid.rs crates/clustering/src/kmeans.rs crates/clustering/src/online.rs Cargo.toml

/root/repo/target/debug/deps/libaccturbo_clustering-3efb3858ac9714c8.rmeta: crates/clustering/src/lib.rs crates/clustering/src/bloom.rs crates/clustering/src/cluster.rs crates/clustering/src/eval.rs crates/clustering/src/feature.rs crates/clustering/src/hybrid.rs crates/clustering/src/kmeans.rs crates/clustering/src/online.rs Cargo.toml

crates/clustering/src/lib.rs:
crates/clustering/src/bloom.rs:
crates/clustering/src/cluster.rs:
crates/clustering/src/eval.rs:
crates/clustering/src/feature.rs:
crates/clustering/src/hybrid.rs:
crates/clustering/src/kmeans.rs:
crates/clustering/src/online.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
