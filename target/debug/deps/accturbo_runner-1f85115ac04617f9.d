/root/repo/target/debug/deps/accturbo_runner-1f85115ac04617f9.d: crates/runner/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libaccturbo_runner-1f85115ac04617f9.rmeta: crates/runner/src/lib.rs Cargo.toml

crates/runner/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
