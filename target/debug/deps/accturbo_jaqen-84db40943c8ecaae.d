/root/repo/target/debug/deps/accturbo_jaqen-84db40943c8ecaae.d: crates/jaqen/src/lib.rs crates/jaqen/src/sketch.rs crates/jaqen/src/switch.rs Cargo.toml

/root/repo/target/debug/deps/libaccturbo_jaqen-84db40943c8ecaae.rmeta: crates/jaqen/src/lib.rs crates/jaqen/src/sketch.rs crates/jaqen/src/switch.rs Cargo.toml

crates/jaqen/src/lib.rs:
crates/jaqen/src/sketch.rs:
crates/jaqen/src/switch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
