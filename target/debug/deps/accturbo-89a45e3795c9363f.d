/root/repo/target/debug/deps/accturbo-89a45e3795c9363f.d: src/lib.rs

/root/repo/target/debug/deps/libaccturbo-89a45e3795c9363f.rlib: src/lib.rs

/root/repo/target/debug/deps/libaccturbo-89a45e3795c9363f.rmeta: src/lib.rs

src/lib.rs:
