/root/repo/target/debug/deps/proptests-c1ceb0a22de31d0a.d: crates/acc/tests/proptests.rs

/root/repo/target/debug/deps/proptests-c1ceb0a22de31d0a: crates/acc/tests/proptests.rs

crates/acc/tests/proptests.rs:
