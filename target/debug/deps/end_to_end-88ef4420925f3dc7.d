/root/repo/target/debug/deps/end_to_end-88ef4420925f3dc7.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-88ef4420925f3dc7: tests/end_to_end.rs

tests/end_to_end.rs:
