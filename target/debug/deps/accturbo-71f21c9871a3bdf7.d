/root/repo/target/debug/deps/accturbo-71f21c9871a3bdf7.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libaccturbo-71f21c9871a3bdf7.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
