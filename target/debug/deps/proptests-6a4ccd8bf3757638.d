/root/repo/target/debug/deps/proptests-6a4ccd8bf3757638.d: crates/acc/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-6a4ccd8bf3757638.rmeta: crates/acc/tests/proptests.rs Cargo.toml

crates/acc/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
