/root/repo/target/debug/deps/accturbo_netsim-689f5739e4373fe5.d: crates/netsim/src/lib.rs crates/netsim/src/engine.rs crates/netsim/src/latency.rs crates/netsim/src/packet.rs crates/netsim/src/queue/mod.rs crates/netsim/src/queue/fifo.rs crates/netsim/src/queue/pifo.rs crates/netsim/src/queue/priority.rs crates/netsim/src/queue/red.rs crates/netsim/src/rate.rs crates/netsim/src/source.rs crates/netsim/src/stats.rs crates/netsim/src/switch.rs crates/netsim/src/time.rs crates/netsim/src/trace.rs crates/netsim/src/units.rs Cargo.toml

/root/repo/target/debug/deps/libaccturbo_netsim-689f5739e4373fe5.rmeta: crates/netsim/src/lib.rs crates/netsim/src/engine.rs crates/netsim/src/latency.rs crates/netsim/src/packet.rs crates/netsim/src/queue/mod.rs crates/netsim/src/queue/fifo.rs crates/netsim/src/queue/pifo.rs crates/netsim/src/queue/priority.rs crates/netsim/src/queue/red.rs crates/netsim/src/rate.rs crates/netsim/src/source.rs crates/netsim/src/stats.rs crates/netsim/src/switch.rs crates/netsim/src/time.rs crates/netsim/src/trace.rs crates/netsim/src/units.rs Cargo.toml

crates/netsim/src/lib.rs:
crates/netsim/src/engine.rs:
crates/netsim/src/latency.rs:
crates/netsim/src/packet.rs:
crates/netsim/src/queue/mod.rs:
crates/netsim/src/queue/fifo.rs:
crates/netsim/src/queue/pifo.rs:
crates/netsim/src/queue/priority.rs:
crates/netsim/src/queue/red.rs:
crates/netsim/src/rate.rs:
crates/netsim/src/source.rs:
crates/netsim/src/stats.rs:
crates/netsim/src/switch.rs:
crates/netsim/src/time.rs:
crates/netsim/src/trace.rs:
crates/netsim/src/units.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
