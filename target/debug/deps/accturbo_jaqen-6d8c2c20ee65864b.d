/root/repo/target/debug/deps/accturbo_jaqen-6d8c2c20ee65864b.d: crates/jaqen/src/lib.rs crates/jaqen/src/sketch.rs crates/jaqen/src/switch.rs

/root/repo/target/debug/deps/libaccturbo_jaqen-6d8c2c20ee65864b.rlib: crates/jaqen/src/lib.rs crates/jaqen/src/sketch.rs crates/jaqen/src/switch.rs

/root/repo/target/debug/deps/libaccturbo_jaqen-6d8c2c20ee65864b.rmeta: crates/jaqen/src/lib.rs crates/jaqen/src/sketch.rs crates/jaqen/src/switch.rs

crates/jaqen/src/lib.rs:
crates/jaqen/src/sketch.rs:
crates/jaqen/src/switch.rs:
