/root/repo/target/debug/deps/accturbo_experiments-6cb3eebe776e6015.d: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/adversarial.rs crates/experiments/src/cli.rs crates/experiments/src/common.rs crates/experiments/src/fig10.rs crates/experiments/src/fig11.rs crates/experiments/src/fig2.rs crates/experiments/src/fig3.rs crates/experiments/src/fig6.rs crates/experiments/src/fig7.rs crates/experiments/src/fig8.rs crates/experiments/src/fig9.rs crates/experiments/src/pushback.rs crates/experiments/src/result.rs crates/experiments/src/table3.rs Cargo.toml

/root/repo/target/debug/deps/libaccturbo_experiments-6cb3eebe776e6015.rmeta: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/adversarial.rs crates/experiments/src/cli.rs crates/experiments/src/common.rs crates/experiments/src/fig10.rs crates/experiments/src/fig11.rs crates/experiments/src/fig2.rs crates/experiments/src/fig3.rs crates/experiments/src/fig6.rs crates/experiments/src/fig7.rs crates/experiments/src/fig8.rs crates/experiments/src/fig9.rs crates/experiments/src/pushback.rs crates/experiments/src/result.rs crates/experiments/src/table3.rs Cargo.toml

crates/experiments/src/lib.rs:
crates/experiments/src/ablations.rs:
crates/experiments/src/adversarial.rs:
crates/experiments/src/cli.rs:
crates/experiments/src/common.rs:
crates/experiments/src/fig10.rs:
crates/experiments/src/fig11.rs:
crates/experiments/src/fig2.rs:
crates/experiments/src/fig3.rs:
crates/experiments/src/fig6.rs:
crates/experiments/src/fig7.rs:
crates/experiments/src/fig8.rs:
crates/experiments/src/fig9.rs:
crates/experiments/src/pushback.rs:
crates/experiments/src/result.rs:
crates/experiments/src/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
