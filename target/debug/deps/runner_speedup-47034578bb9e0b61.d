/root/repo/target/debug/deps/runner_speedup-47034578bb9e0b61.d: crates/bench/benches/runner_speedup.rs Cargo.toml

/root/repo/target/debug/deps/librunner_speedup-47034578bb9e0b61.rmeta: crates/bench/benches/runner_speedup.rs Cargo.toml

crates/bench/benches/runner_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
