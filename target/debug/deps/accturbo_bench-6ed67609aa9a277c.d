/root/repo/target/debug/deps/accturbo_bench-6ed67609aa9a277c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libaccturbo_bench-6ed67609aa9a277c.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libaccturbo_bench-6ed67609aa9a277c.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
