/root/repo/target/debug/deps/end_to_end-ab982c1bfa7c23cf.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-ab982c1bfa7c23cf: tests/end_to_end.rs

tests/end_to_end.rs:
