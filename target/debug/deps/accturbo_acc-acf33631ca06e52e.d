/root/repo/target/debug/deps/accturbo_acc-acf33631ca06e52e.d: crates/acc/src/lib.rs crates/acc/src/config.rs crates/acc/src/prefix.rs crates/acc/src/pushback.rs crates/acc/src/ratelimit.rs crates/acc/src/sessions.rs crates/acc/src/switch.rs

/root/repo/target/debug/deps/libaccturbo_acc-acf33631ca06e52e.rlib: crates/acc/src/lib.rs crates/acc/src/config.rs crates/acc/src/prefix.rs crates/acc/src/pushback.rs crates/acc/src/ratelimit.rs crates/acc/src/sessions.rs crates/acc/src/switch.rs

/root/repo/target/debug/deps/libaccturbo_acc-acf33631ca06e52e.rmeta: crates/acc/src/lib.rs crates/acc/src/config.rs crates/acc/src/prefix.rs crates/acc/src/pushback.rs crates/acc/src/ratelimit.rs crates/acc/src/sessions.rs crates/acc/src/switch.rs

crates/acc/src/lib.rs:
crates/acc/src/config.rs:
crates/acc/src/prefix.rs:
crates/acc/src/pushback.rs:
crates/acc/src/ratelimit.rs:
crates/acc/src/sessions.rs:
crates/acc/src/switch.rs:
