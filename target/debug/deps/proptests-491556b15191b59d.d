/root/repo/target/debug/deps/proptests-491556b15191b59d.d: crates/clustering/tests/proptests.rs

/root/repo/target/debug/deps/proptests-491556b15191b59d: crates/clustering/tests/proptests.rs

crates/clustering/tests/proptests.rs:
