/root/repo/target/debug/deps/xp-98d93809ab1a088f.d: crates/experiments/src/main.rs

/root/repo/target/debug/deps/xp-98d93809ab1a088f: crates/experiments/src/main.rs

crates/experiments/src/main.rs:
