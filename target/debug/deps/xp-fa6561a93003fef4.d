/root/repo/target/debug/deps/xp-fa6561a93003fef4.d: crates/experiments/src/main.rs

/root/repo/target/debug/deps/xp-fa6561a93003fef4: crates/experiments/src/main.rs

crates/experiments/src/main.rs:
