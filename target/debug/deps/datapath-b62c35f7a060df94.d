/root/repo/target/debug/deps/datapath-b62c35f7a060df94.d: crates/bench/benches/datapath.rs

/root/repo/target/debug/deps/datapath-b62c35f7a060df94: crates/bench/benches/datapath.rs

crates/bench/benches/datapath.rs:
