/root/repo/target/debug/deps/xp-cfcefc4471173afe.d: crates/experiments/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libxp-cfcefc4471173afe.rmeta: crates/experiments/src/main.rs Cargo.toml

crates/experiments/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
