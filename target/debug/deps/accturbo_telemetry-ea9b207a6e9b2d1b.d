/root/repo/target/debug/deps/accturbo_telemetry-ea9b207a6e9b2d1b.d: crates/telemetry/src/lib.rs crates/telemetry/src/reaction.rs crates/telemetry/src/report.rs crates/telemetry/src/score.rs

/root/repo/target/debug/deps/libaccturbo_telemetry-ea9b207a6e9b2d1b.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/reaction.rs crates/telemetry/src/report.rs crates/telemetry/src/score.rs

/root/repo/target/debug/deps/libaccturbo_telemetry-ea9b207a6e9b2d1b.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/reaction.rs crates/telemetry/src/report.rs crates/telemetry/src/score.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/reaction.rs:
crates/telemetry/src/report.rs:
crates/telemetry/src/score.rs:
