/root/repo/target/debug/deps/accturbo-c70b0aa723ac19ff.d: src/lib.rs

/root/repo/target/debug/deps/accturbo-c70b0aa723ac19ff: src/lib.rs

src/lib.rs:
