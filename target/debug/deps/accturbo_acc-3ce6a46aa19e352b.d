/root/repo/target/debug/deps/accturbo_acc-3ce6a46aa19e352b.d: crates/acc/src/lib.rs crates/acc/src/config.rs crates/acc/src/prefix.rs crates/acc/src/pushback.rs crates/acc/src/ratelimit.rs crates/acc/src/sessions.rs crates/acc/src/switch.rs

/root/repo/target/debug/deps/libaccturbo_acc-3ce6a46aa19e352b.rlib: crates/acc/src/lib.rs crates/acc/src/config.rs crates/acc/src/prefix.rs crates/acc/src/pushback.rs crates/acc/src/ratelimit.rs crates/acc/src/sessions.rs crates/acc/src/switch.rs

/root/repo/target/debug/deps/libaccturbo_acc-3ce6a46aa19e352b.rmeta: crates/acc/src/lib.rs crates/acc/src/config.rs crates/acc/src/prefix.rs crates/acc/src/pushback.rs crates/acc/src/ratelimit.rs crates/acc/src/sessions.rs crates/acc/src/switch.rs

crates/acc/src/lib.rs:
crates/acc/src/config.rs:
crates/acc/src/prefix.rs:
crates/acc/src/pushback.rs:
crates/acc/src/ratelimit.rs:
crates/acc/src/sessions.rs:
crates/acc/src/switch.rs:
