/root/repo/target/debug/examples/operator_console-7c3e0df92fc99b15.d: examples/operator_console.rs

/root/repo/target/debug/examples/operator_console-7c3e0df92fc99b15: examples/operator_console.rs

examples/operator_console.rs:
