/root/repo/target/debug/examples/operator_console-6358b1bfc01883ba.d: examples/operator_console.rs Cargo.toml

/root/repo/target/debug/examples/liboperator_console-6358b1bfc01883ba.rmeta: examples/operator_console.rs Cargo.toml

examples/operator_console.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
