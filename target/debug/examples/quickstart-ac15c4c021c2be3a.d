/root/repo/target/debug/examples/quickstart-ac15c4c021c2be3a.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-ac15c4c021c2be3a: examples/quickstart.rs

examples/quickstart.rs:
