/root/repo/target/debug/examples/quickstart-370cd2d2f3060ad6.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-370cd2d2f3060ad6.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
