/root/repo/target/debug/examples/pulse_wave_defense-e979260e8fd2aa71.d: examples/pulse_wave_defense.rs

/root/repo/target/debug/examples/pulse_wave_defense-e979260e8fd2aa71: examples/pulse_wave_defense.rs

examples/pulse_wave_defense.rs:
