/root/repo/target/debug/examples/operator_console-a2dd8d463a74fdc2.d: examples/operator_console.rs

/root/repo/target/debug/examples/operator_console-a2dd8d463a74fdc2: examples/operator_console.rs

examples/operator_console.rs:
