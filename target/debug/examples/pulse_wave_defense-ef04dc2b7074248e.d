/root/repo/target/debug/examples/pulse_wave_defense-ef04dc2b7074248e.d: examples/pulse_wave_defense.rs

/root/repo/target/debug/examples/pulse_wave_defense-ef04dc2b7074248e: examples/pulse_wave_defense.rs

examples/pulse_wave_defense.rs:
