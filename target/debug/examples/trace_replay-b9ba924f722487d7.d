/root/repo/target/debug/examples/trace_replay-b9ba924f722487d7.d: examples/trace_replay.rs

/root/repo/target/debug/examples/trace_replay-b9ba924f722487d7: examples/trace_replay.rs

examples/trace_replay.rs:
