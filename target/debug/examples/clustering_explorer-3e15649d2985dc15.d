/root/repo/target/debug/examples/clustering_explorer-3e15649d2985dc15.d: examples/clustering_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libclustering_explorer-3e15649d2985dc15.rmeta: examples/clustering_explorer.rs Cargo.toml

examples/clustering_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
