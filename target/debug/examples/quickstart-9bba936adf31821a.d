/root/repo/target/debug/examples/quickstart-9bba936adf31821a.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-9bba936adf31821a: examples/quickstart.rs

examples/quickstart.rs:
