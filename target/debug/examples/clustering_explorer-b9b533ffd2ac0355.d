/root/repo/target/debug/examples/clustering_explorer-b9b533ffd2ac0355.d: examples/clustering_explorer.rs

/root/repo/target/debug/examples/clustering_explorer-b9b533ffd2ac0355: examples/clustering_explorer.rs

examples/clustering_explorer.rs:
