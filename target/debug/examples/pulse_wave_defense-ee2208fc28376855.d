/root/repo/target/debug/examples/pulse_wave_defense-ee2208fc28376855.d: examples/pulse_wave_defense.rs

/root/repo/target/debug/examples/pulse_wave_defense-ee2208fc28376855: examples/pulse_wave_defense.rs

examples/pulse_wave_defense.rs:
