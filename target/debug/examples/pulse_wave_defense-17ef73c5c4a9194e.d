/root/repo/target/debug/examples/pulse_wave_defense-17ef73c5c4a9194e.d: examples/pulse_wave_defense.rs Cargo.toml

/root/repo/target/debug/examples/libpulse_wave_defense-17ef73c5c4a9194e.rmeta: examples/pulse_wave_defense.rs Cargo.toml

examples/pulse_wave_defense.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
