/root/repo/target/debug/examples/operator_console-47a340f4d8f22355.d: examples/operator_console.rs Cargo.toml

/root/repo/target/debug/examples/liboperator_console-47a340f4d8f22355.rmeta: examples/operator_console.rs Cargo.toml

examples/operator_console.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
