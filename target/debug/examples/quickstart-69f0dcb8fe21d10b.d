/root/repo/target/debug/examples/quickstart-69f0dcb8fe21d10b.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-69f0dcb8fe21d10b: examples/quickstart.rs

examples/quickstart.rs:
