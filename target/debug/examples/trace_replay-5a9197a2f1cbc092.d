/root/repo/target/debug/examples/trace_replay-5a9197a2f1cbc092.d: examples/trace_replay.rs

/root/repo/target/debug/examples/trace_replay-5a9197a2f1cbc092: examples/trace_replay.rs

examples/trace_replay.rs:
