/root/repo/target/debug/examples/clustering_explorer-eb5b11652a4457b7.d: examples/clustering_explorer.rs

/root/repo/target/debug/examples/clustering_explorer-eb5b11652a4457b7: examples/clustering_explorer.rs

examples/clustering_explorer.rs:
