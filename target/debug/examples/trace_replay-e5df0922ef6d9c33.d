/root/repo/target/debug/examples/trace_replay-e5df0922ef6d9c33.d: examples/trace_replay.rs

/root/repo/target/debug/examples/trace_replay-e5df0922ef6d9c33: examples/trace_replay.rs

examples/trace_replay.rs:
