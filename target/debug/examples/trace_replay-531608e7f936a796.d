/root/repo/target/debug/examples/trace_replay-531608e7f936a796.d: examples/trace_replay.rs Cargo.toml

/root/repo/target/debug/examples/libtrace_replay-531608e7f936a796.rmeta: examples/trace_replay.rs Cargo.toml

examples/trace_replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
