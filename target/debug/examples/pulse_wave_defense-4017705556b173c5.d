/root/repo/target/debug/examples/pulse_wave_defense-4017705556b173c5.d: examples/pulse_wave_defense.rs Cargo.toml

/root/repo/target/debug/examples/libpulse_wave_defense-4017705556b173c5.rmeta: examples/pulse_wave_defense.rs Cargo.toml

examples/pulse_wave_defense.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
