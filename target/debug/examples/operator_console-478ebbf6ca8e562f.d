/root/repo/target/debug/examples/operator_console-478ebbf6ca8e562f.d: examples/operator_console.rs

/root/repo/target/debug/examples/operator_console-478ebbf6ca8e562f: examples/operator_console.rs

examples/operator_console.rs:
