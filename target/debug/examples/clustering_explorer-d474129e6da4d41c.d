/root/repo/target/debug/examples/clustering_explorer-d474129e6da4d41c.d: examples/clustering_explorer.rs

/root/repo/target/debug/examples/clustering_explorer-d474129e6da4d41c: examples/clustering_explorer.rs

examples/clustering_explorer.rs:
