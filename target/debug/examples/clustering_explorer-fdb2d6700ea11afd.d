/root/repo/target/debug/examples/clustering_explorer-fdb2d6700ea11afd.d: examples/clustering_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libclustering_explorer-fdb2d6700ea11afd.rmeta: examples/clustering_explorer.rs Cargo.toml

examples/clustering_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
