//! Operator tooling from the paper's §10: inspect the live
//! cluster → priority-queue mapping while a defense runs, and pin a
//! known-benign cluster to a dedicated high-priority queue.
//!
//! A tight UDP flood shares the link with a legitimate high-rate backup
//! transfer (a benign "elephant"). A plain throughput ranking would
//! deprioritize the backup along with the flood; the operator identifies
//! the backup's cluster from the console and pins it to queue 0 so the
//! flood alone is punished.
//!
//! Run with: `cargo run --release --example operator_console`

use accturbo::clustering::FeatureSet;
use accturbo::core::{AccTurboConfig, AccTurboSwitch};
use accturbo::netsim::{
    run, Bandwidth, ClassId, EngineConfig, MergedSource, PacketSource, SimDuration, SimTime,
};
use accturbo::sched::RankingAlgorithm;
use accturbo::traffic::{
    AttackConfig, AttackSource, AttackVector, BackgroundConfig, BackgroundSource, CbrSource,
    FlowTemplate, Spread, SpreadSource,
};
use std::net::Ipv4Addr;

const LINK_BPS: u64 = 18_000_000;
const SECS: u64 = 30;
/// The backup service's destination /24 — what the operator recognizes.
const BACKUP_NET: [u8; 3] = [203, 7, 44];

fn workload() -> MergedSource {
    let end = SimTime::from_secs(SECS);
    let flood: Box<dyn PacketSource> = Box::new(AttackSource::new(
        AttackConfig::new(
            AttackVector::UdpFlood,
            10_000_000,
            SimTime::from_secs(5),
            end,
            ClassId(1),
            3,
        )
        .with_single_flow(),
    ));
    let background: Box<dyn PacketSource> = Box::new(BackgroundSource::new(
        BackgroundConfig::new(6_000_000, SimTime::ZERO, end, 11),
    ));
    // The legitimate backup transfer: high rate, spread over its /24.
    let backup = CbrSource::new(
        FlowTemplate::udp(
            Ipv4Addr::new(95, 10, 1, 1),
            Ipv4Addr::new(BACKUP_NET[0], BACKUP_NET[1], BACKUP_NET[2], 0),
            30_000,
            443,
            ClassId::BENIGN,
        )
        .with_size(1200),
        11_000_000,
        SimTime::ZERO,
        end,
    );
    let backup: Box<dyn PacketSource> = Box::new(SpreadSource::new(
        backup,
        Spread {
            dst_low_bits: 8,
            src_low_bits: 12,
            sport: Some((30_000, 33_000)),
            ..Spread::default()
        },
        7,
    ));
    MergedSource::new(vec![flood, background, backup])
}

fn switch() -> AccTurboSwitch<'static> {
    AccTurboSwitch::new(
        AccTurboConfig::simulation(FeatureSet::simulation_default())
            .with_ranking(RankingAlgorithm::Throughput),
    )
}

fn engine(secs: u64) -> EngineConfig {
    EngineConfig::new(Bandwidth::from_bps(LINK_BPS))
        .with_stats_interval(SimDuration::from_secs(1))
        .with_control_period(SimDuration::from_millis(50))
        .with_end_time(SimTime::from_secs(secs))
}

/// Warm up the defense and find which cluster slot carries the backup's
/// /24 — what the operator reads off the console's range dump.
fn find_backup_cluster() -> usize {
    let mut source = workload();
    let mut counts = vec![0u64; 10];
    let mut sw = switch();
    sw.set_tap(Box::new(|pkt, cluster, _queue| {
        if pkt.dst.octets()[..3] == BACKUP_NET {
            counts[cluster] += 1;
        }
    }));
    run(&mut source, &mut sw, &engine(10));
    drop(sw);
    counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(i, _)| i)
        .expect("ten clusters")
}

fn run_once(pin: Option<usize>) -> (f64, f64) {
    let mut source = workload();
    let mut sw = switch();
    if let Some(cluster) = pin {
        sw.controller_mut().pin(cluster, 0);
    }
    let res = run(&mut source, &mut sw, &engine(SECS));
    (res.stats.benign_drop_pct(), res.stats.attack_drop_pct())
}

fn main() {
    // Console: watch the mapping evolve during the attack's onset.
    let mut source = workload();
    let mut sw = switch();
    run(&mut source, &mut sw, &engine(8));
    println!("cluster -> queue mapping after 8 s: {:?} (queue 0 = best)", sw.mapping());

    let backup_cluster = find_backup_cluster();
    println!("backup /{BACKUP_NET:?}/24 traffic lives in cluster {backup_cluster}");

    let (benign_plain, attack_plain) = run_once(None);
    let (benign_pinned, attack_pinned) = run_once(Some(backup_cluster));
    println!("\nwith a legitimate 11 Mbps backup next to a 10 Mbps flood:");
    println!(
        "  throughput ranking, no pin : benign drops {benign_plain:.1}%  attack drops {attack_plain:.1}%"
    );
    println!(
        "  backup cluster pinned to q0: benign drops {benign_pinned:.1}%  attack drops {attack_pinned:.1}%"
    );
}
