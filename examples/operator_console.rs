//! Operator tooling from the paper's §10: inspect the live
//! cluster → priority-queue mapping while a defense runs, and pin a
//! known-benign cluster to a dedicated high-priority queue.
//!
//! A tight UDP flood shares the link with a legitimate high-rate backup
//! transfer (a benign "elephant"). A plain throughput ranking would
//! deprioritize the backup along with the flood; the operator identifies
//! the backup's cluster from the console and pins it to queue 0 so the
//! flood alone is punished.
//!
//! Run with: `cargo run --release --example operator_console`

use accturbo::clustering::FeatureSet;
use accturbo::core::{AccTurboConfig, AccTurboSwitch};
use accturbo::netsim::{
    run, run_streamed, Bandwidth, ClassId, EngineConfig, MergedSource, PacketSource, SimDuration,
    SimTime,
};
use accturbo::obs::{raw_field, MetricsHandle, NoopTracer, Registry, Sink, Telemetry};
use accturbo::sched::RankingAlgorithm;
use accturbo::traffic::{
    AttackConfig, AttackSource, AttackVector, BackgroundConfig, BackgroundSource, CbrSource,
    FlowTemplate, Spread, SpreadSource,
};
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;

const LINK_BPS: u64 = 18_000_000;
const SECS: u64 = 30;
/// The backup service's destination /24 — what the operator recognizes.
const BACKUP_NET: [u8; 3] = [203, 7, 44];

fn workload() -> MergedSource {
    let end = SimTime::from_secs(SECS);
    let flood: Box<dyn PacketSource> = Box::new(AttackSource::new(
        AttackConfig::new(
            AttackVector::UdpFlood,
            10_000_000,
            SimTime::from_secs(5),
            end,
            ClassId(1),
            3,
        )
        .with_single_flow(),
    ));
    let background: Box<dyn PacketSource> = Box::new(BackgroundSource::new(BackgroundConfig::new(
        6_000_000,
        SimTime::ZERO,
        end,
        11,
    )));
    // The legitimate backup transfer: high rate, spread over its /24.
    let backup = CbrSource::new(
        FlowTemplate::udp(
            Ipv4Addr::new(95, 10, 1, 1),
            Ipv4Addr::new(BACKUP_NET[0], BACKUP_NET[1], BACKUP_NET[2], 0),
            30_000,
            443,
            ClassId::BENIGN,
        )
        .with_size(1200),
        11_000_000,
        SimTime::ZERO,
        end,
    );
    let backup: Box<dyn PacketSource> = Box::new(SpreadSource::new(
        backup,
        Spread {
            dst_low_bits: 8,
            src_low_bits: 12,
            sport: Some((30_000, 33_000)),
            ..Spread::default()
        },
        7,
    ));
    MergedSource::new(vec![flood, background, backup])
}

fn switch() -> AccTurboSwitch<'static> {
    AccTurboSwitch::new(
        AccTurboConfig::simulation(FeatureSet::simulation_default())
            .with_ranking(RankingAlgorithm::Throughput),
    )
}

fn engine(secs: u64) -> EngineConfig {
    EngineConfig::new(Bandwidth::from_bps(LINK_BPS))
        .with_stats_interval(SimDuration::from_secs(1))
        .with_control_period(SimDuration::from_millis(50))
        .with_end_time(SimTime::from_secs(secs))
}

/// Warm up the defense and find which cluster slot carries the backup's
/// /24 — what the operator reads off the console's range dump.
fn find_backup_cluster() -> usize {
    let mut source = workload();
    let mut counts = [0u64; 10];
    let mut sw = switch();
    sw.set_tap(Box::new(|pkt, cluster, _queue| {
        if pkt.dst.octets()[..3] == BACKUP_NET {
            counts[cluster] += 1;
        }
    }));
    run(&mut source, &mut sw, &engine(10));
    drop(sw);
    counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(i, _)| i)
        .expect("ten clusters")
}

fn run_once(pin: Option<usize>) -> (f64, f64) {
    let mut source = workload();
    let mut sw = switch();
    if let Some(cluster) = pin {
        sw.controller_mut().pin(cluster, 0);
    }
    let res = run(&mut source, &mut sw, &engine(SECS));
    (res.stats.benign_drop_pct(), res.stats.attack_drop_pct())
}

/// A [`Sink`] that renders the streaming telemetry feed as a console
/// table, one row per control period, as the run progresses. The
/// `Telemetry` layer already emits per-period deltas, so no
/// previous-total bookkeeping is needed: `period` lines carry arrivals
/// / drops / backlog, and the `switch_enqueues` counter delta rides in
/// on its `agg` line. Fields are pulled with the shared
/// [`accturbo::obs::raw_field`] flat-JSON extractor.
struct ConsoleSink {
    ts_ns: u64,
    arrived: u64,
    dropped: u64,
    enqueued: u64,
    backlog: u64,
    have_row: bool,
}

impl ConsoleSink {
    fn new() -> Self {
        ConsoleSink {
            ts_ns: 0,
            arrived: 0,
            dropped: 0,
            enqueued: 0,
            backlog: 0,
            have_row: false,
        }
    }
}

impl Sink for ConsoleSink {
    fn emit(&mut self, line: &str) {
        let num = |key: &str| raw_field(line, key).and_then(|v| v.parse::<u64>().ok());
        match raw_field(line, "ev").map(|v| v.trim_matches('"')) {
            Some("period") => {
                self.ts_ns = num("ts").unwrap_or(0);
                self.arrived = num("arrivals").unwrap_or(0);
                self.dropped = num("drops").unwrap_or(0);
                self.backlog = num("backlog").unwrap_or(0);
                self.have_row = true;
            }
            Some("agg") if raw_field(line, "metric") == Some("\"switch_enqueues\"") => {
                self.enqueued = num("delta").unwrap_or(0);
            }
            _ => {}
        }
    }

    // `Telemetry` flushes once per control period, after the period's
    // lines — exactly one complete console row per flush.
    fn flush(&mut self) {
        if !self.have_row {
            return;
        }
        println!(
            "{:>6.2}  {:>8}  {:>8}  {:>8}  {:>8}",
            self.ts_ns as f64 / 1e9,
            self.arrived,
            self.dropped,
            self.enqueued,
            self.backlog,
        );
        self.have_row = false;
    }
}

fn main() {
    // Console: watch the mapping evolve during the attack's onset, with
    // a live metrics row per control period (stats interval aligned to
    // the control period so each row covers exactly one remap). Rows
    // stream out of the engine as the simulation runs — nothing is
    // accumulated and replayed afterwards.
    let period = SimDuration::from_millis(250);
    let mut source = workload();
    let mut sw = switch();
    let metrics: MetricsHandle = Rc::new(RefCell::new(Registry::new()));
    sw.set_metrics(Rc::clone(&metrics));
    let cfg = EngineConfig::new(Bandwidth::from_bps(LINK_BPS))
        .with_stats_interval(period)
        .with_control_period(period)
        .with_end_time(SimTime::from_secs(8));
    println!(
        "live metrics (one row per {} ms control period; pkt counts are per-period):",
        period.as_secs_f64() * 1e3
    );
    println!(
        "{:>6}  {:>8}  {:>8}  {:>8}  {:>8}",
        "t(s)", "arrived", "dropped", "enqueued", "backlog"
    );
    let mut tel = Telemetry::new().with_sink(Box::new(ConsoleSink::new()));
    run_streamed(
        &mut source,
        &mut sw,
        &cfg,
        &mut NoopTracer,
        Some(&metrics),
        None,
        Some(&mut tel),
    );
    println!(
        "cluster -> queue mapping after 8 s: {:?} (queue 0 = best)",
        sw.mapping()
    );

    let backup_cluster = find_backup_cluster();
    println!("backup /{BACKUP_NET:?}/24 traffic lives in cluster {backup_cluster}");

    let (benign_plain, attack_plain) = run_once(None);
    let (benign_pinned, attack_pinned) = run_once(Some(backup_cluster));
    println!("\nwith a legitimate 11 Mbps backup next to a 10 Mbps flood:");
    println!(
        "  throughput ranking, no pin : benign drops {benign_plain:.1}%  attack drops {attack_plain:.1}%"
    );
    println!(
        "  backup cluster pinned to q0: benign drops {benign_pinned:.1}%  attack drops {attack_pinned:.1}%"
    );
}
