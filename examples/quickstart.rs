//! Quickstart: defend a bottleneck link against a pulse-wave DDoS attack.
//!
//! Builds the paper's Fig. 3 workload (four CBR services at the link's
//! capacity plus a morphing pulse-wave attack), runs it through three
//! switches — undefended FIFO, classic ACC, and ACC-Turbo — and prints a
//! per-second bandwidth-share comparison plus the headline benign-drop
//! percentages.
//!
//! Run with: `cargo run --release --example quickstart`

use accturbo::acc::{AccConfig, AccSwitch};
use accturbo::clustering::FeatureSet;
use accturbo::core::{AccTurboConfig, AccTurboSwitch};
use accturbo::netsim::{
    run, Bandwidth, ClassId, EngineConfig, FifoQueue, RunResult, SimDuration, SimTime,
    SingleQueueSwitch, Switch,
};
use accturbo::traffic::scenarios;

const LINK_BPS: u64 = 10_000_000; // a 10 Mbps bottleneck
const SECS: u64 = scenarios::RUN_SECS;

fn simulate(switch: &mut dyn Switch, control_ms: Option<u64>) -> RunResult {
    let mut source = scenarios::fig3_source(LINK_BPS, 42);
    let mut cfg = EngineConfig::new(Bandwidth::from_bps(LINK_BPS))
        .with_stats_interval(SimDuration::from_secs(1))
        .with_end_time(SimTime::from_secs(SECS));
    if let Some(ms) = control_ms {
        cfg = cfg.with_control_period(SimDuration::from_millis(ms));
    }
    run(&mut source, switch, &cfg)
}

fn benign_drop_pct(res: &RunResult) -> f64 {
    let classes: Vec<ClassId> = (1..=4).map(ClassId).collect();
    res.stats.drop_pct_of(&classes)
}

fn main() {
    println!("Pulse-wave attack: 4 pulses (NTP, DNS, SNMP, NetBIOS) at 3x the link rate\n");

    // 1. No defense.
    let mut fifo = SingleQueueSwitch::new(FifoQueue::new(512 * 1024));
    let fifo_res = simulate(&mut fifo, None);

    // 2. Classic ACC (Table 4 parameters).
    let mut acc = AccSwitch::new(AccConfig::default(), Bandwidth::from_bps(LINK_BPS));
    let acc_res = simulate(&mut acc, Some(100));

    // 3. ACC-Turbo (10 clusters, full feature set, throughput ranking).
    let mut turbo =
        AccTurboSwitch::new(AccTurboConfig::simulation(FeatureSet::simulation_default()));
    let turbo_res = simulate(&mut turbo, Some(250));

    println!("benign traffic share of the link, per second:");
    println!(
        "{:>4} {:>8} {:>8} {:>10}",
        "t(s)", "FIFO", "ACC", "ACC-Turbo"
    );
    for t in 0..SECS as usize {
        let share = |res: &RunResult| -> f64 {
            (1..=4)
                .map(|c| res.stats.throughput_bps(t, ClassId(c)))
                .sum::<f64>()
                / LINK_BPS as f64
        };
        let marker = if [5, 15, 25, 35].contains(&t) {
            " <- pulse"
        } else {
            ""
        };
        println!(
            "{t:>4} {:>8.2} {:>8.2} {:>10.2}{marker}",
            share(&fifo_res),
            share(&acc_res),
            share(&turbo_res),
        );
    }

    println!("\nbenign packets dropped over the whole run:");
    println!("  FIFO      {:>6.2}%", benign_drop_pct(&fifo_res));
    println!("  ACC       {:>6.2}%", benign_drop_pct(&acc_res));
    println!("  ACC-Turbo {:>6.2}%", benign_drop_pct(&turbo_res));
}
