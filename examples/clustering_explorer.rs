//! Explore the online-clustering design space of paper §4 on a synthetic
//! attack day: compare distances (Manhattan / Anime / Euclidean), search
//! strategies (fast / exhaustive), and cluster counts by purity and
//! recall, and dump the interpretable cluster ranges the operator would
//! see (§10).
//!
//! Run with: `cargo run --release --example clustering_explorer`

use accturbo::clustering::{
    ClusteringConfig, Dim, DistanceKind, FeatureSet, OnlineClusterer, Repr, SearchKind,
    WindowedEval,
};
use accturbo::netsim::{PacketSource, SimDuration};
use accturbo::traffic::{AttackVector, CicDdosConfig};

fn day() -> CicDdosConfig {
    CicDdosConfig {
        vectors: vec![
            AttackVector::Ntp,
            AttackVector::Ssdp,
            AttackVector::UdpFlood,
        ],
        episode: SimDuration::from_secs(4),
        gap: SimDuration::from_secs(2),
        ..CicDdosConfig::default()
    }
}

fn evaluate(cfg: ClusteringConfig) -> (f64, f64) {
    let mut source = day().into_source();
    let mut clusterer = OnlineClusterer::new(cfg);
    let mut eval = WindowedEval::new(SimDuration::from_secs(4));
    let mut next_poll = SimDuration::from_millis(50);
    while let Some(pkt) = source.next_packet() {
        while pkt.arrival.as_nanos() >= next_poll.as_nanos() {
            clusterer.take_window();
            clusterer.reset_clusters();
            next_poll += SimDuration::from_millis(50);
        }
        let cluster = clusterer.assign(&pkt);
        eval.record(pkt.arrival, cluster, pkt.class);
    }
    let q = eval.finish();
    (q.purity, q.recall_benign)
}

fn main() {
    println!("design space on a 3-vector attack day (NTP, SSDP, UDP flood):\n");
    println!(
        "{:<28} {:>8} {:>14}",
        "strategy", "purity%", "recall-benign%"
    );
    for (name, distance, search) in [
        (
            "Manhattan / fast (deploy)",
            DistanceKind::Manhattan,
            SearchKind::Fast,
        ),
        (
            "Manhattan / exhaustive",
            DistanceKind::Manhattan,
            SearchKind::Exhaustive,
        ),
        ("Anime / fast", DistanceKind::Anime, SearchKind::Fast),
        (
            "Anime / exhaustive",
            DistanceKind::Anime,
            SearchKind::Exhaustive,
        ),
        (
            "Euclidean / fast",
            DistanceKind::Euclidean,
            SearchKind::Fast,
        ),
        (
            "Euclidean / exhaustive",
            DistanceKind::Euclidean,
            SearchKind::Exhaustive,
        ),
    ] {
        let mut cfg = ClusteringConfig::deployable(10, FeatureSet::simulation_default());
        cfg.distance = distance;
        cfg.search = search;
        let (purity, recall) = evaluate(cfg);
        println!("{name:<28} {purity:>8.2} {recall:>14.2}");
    }

    println!("\ncluster count sweep (Manhattan / fast):");
    println!(
        "{:>9} {:>8} {:>14}",
        "clusters", "purity%", "recall-benign%"
    );
    for k in [2usize, 4, 6, 8, 10, 16] {
        let cfg = ClusteringConfig::deployable(k, FeatureSet::simulation_default());
        let (purity, recall) = evaluate(cfg);
        println!("{k:>9} {purity:>8.2} {recall:>14.2}");
    }

    // Operator interpretability (§10): the exact ranges of each cluster
    // after clustering one NTP episode.
    println!("\ncluster ranges after an NTP burst (operator view):");
    let mut source = CicDdosConfig {
        vectors: vec![AttackVector::Ntp],
        episode: SimDuration::from_secs(2),
        gap: SimDuration::from_secs(1),
        ..CicDdosConfig::default()
    }
    .into_source();
    let features = FeatureSet::hardware_fig6();
    let mut clusterer = OnlineClusterer::new(
        ClusteringConfig::deployable(4, features.clone()).with_update_budget(None),
    );
    let mut counts = [(0u64, 0u64); 4];
    while let Some(pkt) = source.next_packet() {
        let c = clusterer.assign(&pkt);
        if pkt.class.is_attack() {
            counts[c].1 += 1;
        } else {
            counts[c].0 += 1;
        }
    }
    for (k, &(benign, attack)) in counts.iter().enumerate() {
        let Some(Repr::Range(cluster)) = clusterer.repr(k) else {
            continue;
        };
        print!("  cluster {k} (benign {benign:>6}, attack {attack:>6}): ");
        for (spec, dim) in features.specs().iter().zip(cluster.dims()) {
            match dim {
                Dim::Range { min, max } => print!("{}=[{min},{max}] ", spec.feature.name()),
                Dim::Set(set) => {
                    print!("{}={{{} values}} ", spec.feature.name(), set.cardinality())
                }
            }
        }
        println!();
    }
}
