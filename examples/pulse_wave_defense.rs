//! The paper's testbed experiment (§7.1) end to end: CAIDA-like
//! background traffic on a rate-scaled 10 G bottleneck, hit by four
//! UDP-flood pulses, defended by the Tofino hardware profile of
//! ACC-Turbo (4 clusters on the destination-address low bytes + ports).
//!
//! Prints the attack/benign throughput time series for FIFO and
//! ACC-Turbo side by side — the data behind Fig. 6 — and measures the
//! reaction time to each pulse.
//!
//! Run with: `cargo run --release --example pulse_wave_defense`

use accturbo::clustering::FeatureSet;
use accturbo::core::{AccTurboConfig, AccTurboSwitch};
use accturbo::netsim::{
    run, Bandwidth, ClassId, EngineConfig, FifoQueue, MergedSource, PacketSource, RunResult,
    SimDuration, SimTime, SingleQueueSwitch, Switch,
};
use accturbo::traffic::{BackgroundConfig, BackgroundSource, PulseWave};
use std::net::Ipv4Addr;

const LINK_BPS: u64 = 10_000_000; // 10 Gbps at the documented 1/1000 scale
const SECS: u64 = 100;

fn workload() -> MergedSource {
    let end = SimTime::from_secs(SECS);
    let background: Box<dyn PacketSource> = Box::new(BackgroundSource::new(BackgroundConfig::new(
        7_000_000,
        SimTime::ZERO,
        end,
        1,
    )));
    // Four 10 s pulses at 4x the bottleneck, 10 s apart, each hitting a
    // different host and port of the victim /24.
    let pulses: Box<dyn PacketSource> = Box::new(
        PulseWave::fig6(
            4,
            SimTime::from_secs(10),
            SimDuration::from_secs(10),
            SimDuration::from_secs(10),
            40_000_000,
            Ipv4Addr::new(198, 18, 5, 0),
            2,
        )
        .into_source(),
    );
    MergedSource::new(vec![background, pulses])
}

fn simulate(switch: &mut dyn Switch, control_ms: Option<u64>) -> RunResult {
    let mut source = workload();
    let mut cfg = EngineConfig::new(Bandwidth::from_bps(LINK_BPS))
        .with_stats_interval(SimDuration::from_secs(1))
        .with_end_time(SimTime::from_secs(SECS));
    if let Some(ms) = control_ms {
        cfg = cfg.with_control_period(SimDuration::from_millis(ms));
    }
    run(&mut source, switch, &cfg)
}

fn main() {
    let mut fifo = SingleQueueSwitch::new(FifoQueue::new(512 * 1024));
    let fifo_res = simulate(&mut fifo, None);

    let mut turbo = AccTurboSwitch::new(AccTurboConfig::hardware(FeatureSet::hardware_fig6()));
    let turbo_res = simulate(&mut turbo, Some(50));

    println!("throughput (Mbps at the 1/1000 scale == Gbps on the paper's axis):\n");
    println!(
        "{:>4} | {:>8} {:>8} | {:>8} {:>8}",
        "t(s)", "FIFO-atk", "FIFO-ben", "AT-atk", "AT-ben"
    );
    for t in 0..SECS as usize {
        println!(
            "{t:>4} | {:>8.2} {:>8.2} | {:>8.2} {:>8.2}",
            fifo_res.stats.attack_throughput_bps(t) / 1e6,
            fifo_res.stats.throughput_bps(t, ClassId::BENIGN) / 1e6,
            turbo_res.stats.attack_throughput_bps(t) / 1e6,
            turbo_res.stats.throughput_bps(t, ClassId::BENIGN) / 1e6,
        );
    }

    // Reaction to each pulse: the first second of the pulse in which the
    // attack is held below half the link.
    println!("\nACC-Turbo reaction per pulse:");
    for pulse in 0..4u64 {
        let start = (10 + 20 * pulse) as usize;
        let reaction = (start..start + 10)
            .find(|&t| turbo_res.stats.attack_throughput_bps(t) < 0.5 * LINK_BPS as f64)
            .map(|t| format!("{}s", t - start))
            .unwrap_or_else(|| "none".into());
        println!(
            "  pulse {} (t={start}s): suppressed within {reaction}",
            pulse + 1
        );
    }

    println!(
        "\nbenign packet drops: FIFO {:.1}% vs ACC-Turbo {:.1}%",
        fifo_res.stats.benign_drop_pct(),
        turbo_res.stats.benign_drop_pct()
    );
}
