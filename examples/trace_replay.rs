//! Replay a packet capture through the defense — the workflow the paper's
//! testbed uses with CAIDA traces, end to end:
//!
//! 1. synthesize a workload and write it as a classic libpcap file (in
//!    practice you would capture this with tcpdump);
//! 2. read the pcap back (any ethernet/raw-IP IPv4 capture works);
//! 3. replay it through FIFO and ACC-Turbo and compare;
//! 4. export the per-packet trace as CSV for external analysis.
//!
//! Run with: `cargo run --release --example trace_replay`

use accturbo::clustering::FeatureSet;
use accturbo::core::{AccTurboConfig, AccTurboSwitch};
use accturbo::netsim::{
    pcap_source, run, write_csv, write_pcap, Bandwidth, ClassId, EngineConfig, FifoQueue,
    MergedSource, Packet, PacketSource, SimDuration, SimTime, SingleQueueSwitch,
};
use accturbo::traffic::{
    AttackConfig, AttackSource, AttackVector, BackgroundConfig, BackgroundSource,
};

const SECS: u64 = 30;

fn build_capture() -> Vec<Packet> {
    let end = SimTime::from_secs(SECS);
    let mut source = MergedSource::new(vec![
        Box::new(BackgroundSource::new(BackgroundConfig::new(
            6_000_000,
            SimTime::ZERO,
            end,
            17,
        ))) as Box<dyn PacketSource>,
        Box::new(AttackSource::new(AttackConfig::new(
            AttackVector::Memcached,
            30_000_000,
            SimTime::from_secs(8),
            SimTime::from_secs(22),
            ClassId(1),
            18,
        ))),
    ]);
    std::iter::from_fn(move || source.next_packet()).collect()
}

fn main() -> std::io::Result<()> {
    // 1. Write the capture (tcpdump stand-in).
    let capture = build_capture();
    let dir = std::env::temp_dir();
    let pcap_path = dir.join("accturbo_trace_replay.pcap");
    write_pcap(std::fs::File::create(&pcap_path)?, &capture)?;
    println!("wrote {} packets to {}", capture.len(), pcap_path.display());

    // 2. Read it back. Note: pcap carries no ground-truth labels — we
    //    relabel Memcached-signature packets so the report can score the
    //    defense, exactly as one would label a captured attack trace.
    let (packets, stats) = accturbo::netsim::read_pcap(std::fs::File::open(&pcap_path)?)?;
    println!(
        "parsed {} packets ({} skipped)",
        stats.parsed, stats.skipped
    );
    let labeled: Vec<Packet> = packets
        .into_iter()
        .map(|mut p| {
            if p.sport == 11_211 {
                p.class = ClassId(1);
            }
            p
        })
        .collect();

    // 3. Replay through FIFO and ACC-Turbo.
    let engine = EngineConfig::new(Bandwidth::from_mbps(10))
        .with_stats_interval(SimDuration::from_secs(1))
        .with_control_period(SimDuration::from_millis(50));
    let mut fifo = SingleQueueSwitch::new(FifoQueue::new(512 * 1024).with_pkt_cap(775));
    let mut src = accturbo::netsim::VecSource::new(labeled.clone());
    let fifo_res = run(&mut src, &mut fifo, &engine);

    let mut turbo = AccTurboSwitch::new(AccTurboConfig::hardware(FeatureSet::hardware_fig6()));
    let mut src = accturbo::netsim::VecSource::new(labeled.clone());
    let turbo_res = run(&mut src, &mut turbo, &engine);

    println!("\nreplay on a 10 Mbps bottleneck (Memcached flood from t=8s to t=22s):");
    println!(
        "  FIFO      benign drops {:>5.1}%  attack drops {:>5.1}%",
        fifo_res.stats.benign_drop_pct(),
        fifo_res.stats.attack_drop_pct()
    );
    println!(
        "  ACC-Turbo benign drops {:>5.1}%  attack drops {:>5.1}%",
        turbo_res.stats.benign_drop_pct(),
        turbo_res.stats.attack_drop_pct()
    );

    // 4. Export as CSV.
    let csv_path = dir.join("accturbo_trace_replay.csv");
    write_csv(std::fs::File::create(&csv_path)?, &labeled)?;
    println!("\nexported the labeled trace to {}", csv_path.display());

    // Bonus: `pcap_source` plugs a capture straight into the engine.
    let (mut src, _) = pcap_source(std::fs::File::open(&pcap_path)?)?;
    let mut sw = SingleQueueSwitch::new(FifoQueue::new(512 * 1024));
    let res = run(
        &mut src,
        &mut sw,
        &EngineConfig::new(Bandwidth::from_mbps(100)),
    );
    println!(
        "uncongested sanity replay: {} in / {} out",
        res.arrivals, res.departures
    );
    Ok(())
}
